"""Unit tests for the fleet execution service: jobs, cache, scheduler,
admission control and telemetry."""

import pytest

from repro import ExecutionService, Protocol, ServiceConfig
from repro.core.errors import ServiceError
from repro.service import JobState, ProgramCache, program_key
from repro.workloads import (
    bursty_traffic,
    hot_protocol_traffic,
    mixed_priority_traffic,
    service_protocol_variant,
)


def tiny_protocol(name="tiny", column=10):
    return (
        Protocol(name)
        .trap("p", (2, 2))
        .move("p", (2, column))
        .release("p")
    )


def dry_service(**config_kwargs):
    from repro import Biochip

    return ExecutionService.dry_run(
        ServiceConfig(**config_kwargs), grid=Biochip.small_chip().grid
    )


class TestJobLifecycle:
    def test_submit_poll_wait(self):
        service = dry_service(n_chips=2)
        handle = service.submit(tiny_protocol())
        assert handle.poll() is JobState.QUEUED
        assert not handle.done()
        result = handle.wait()
        assert handle.done()
        assert result.ok and result.state is JobState.DONE
        assert result.run.count() == 3
        assert result.chip_id in (0, 1)

    def test_result_without_wait_raises_while_queued(self):
        service = dry_service(n_chips=1)
        handle = service.submit(tiny_protocol())
        with pytest.raises(ServiceError, match="queued"):
            handle.result(wait=False)

    def test_drain_serves_everything(self):
        service = dry_service(n_chips=3)
        handles = service.submit_many(tiny_protocol(f"p{i}") for i in range(7))
        results = service.drain()
        assert len(results) == 7
        assert all(r.ok for r in results)
        assert all(h.done() for h in handles)
        assert service.queue_depth == 0
        assert service.drain() == []  # idempotent on an empty queue

    def test_priority_order(self):
        service = dry_service(n_chips=1)
        low = service.submit(tiny_protocol("low"), priority=0)
        high = service.submit(tiny_protocol("high"), priority=5)
        mid = service.submit(tiny_protocol("mid"), priority=2)
        order = [r.protocol_name for r in service.drain()]
        assert order == ["high", "mid", "low"]
        assert low.result().ok and high.result().ok and mid.result().ok

    def test_fifo_within_priority(self):
        service = dry_service(n_chips=1)
        for i in range(4):
            service.submit(tiny_protocol(f"p{i}"), priority=1)
        assert [r.protocol_name for r in service.drain()] == [
            "p0", "p1", "p2", "p3"
        ]

    def test_failed_job_reports_error(self):
        service = dry_service(n_chips=1)
        # two cages trapped adjacent: violates min separation at runtime
        bad = Protocol("bad").trap("a", (5, 5)).trap("b", (5, 6))
        ok_handle = service.submit(tiny_protocol())
        bad_handle = service.submit(bad)
        service.drain()
        assert ok_handle.result().ok
        bad_result = bad_handle.result()
        assert bad_result.state is JobState.FAILED
        assert not bad_result.ok
        assert "separation" in str(bad_result.error)
        snap = service.snapshot()
        assert snap["counters"]["failed"] == 1
        assert snap["counters"]["completed"] == 1

    def test_deadline_expires_stale_jobs(self):
        service = dry_service(n_chips=1)
        # the long job runs first (higher priority) and advances the
        # fleet clock past the second job's queue-wait deadline
        long_job = service_protocol_variant(
            service.fleet.workers[0].session.backend.grid, variant=2,
            samples=5000,
        )
        service.submit(long_job, priority=5)
        impatient = service.submit(tiny_protocol("impatient"), deadline=1e-6)
        patient = service.submit(tiny_protocol("patient"), deadline=1e9)
        service.drain()
        assert impatient.result().state is JobState.EXPIRED
        assert patient.result().ok
        assert service.snapshot()["counters"]["expired"] == 1

    def test_virtual_latency_accounting(self):
        service = dry_service(n_chips=1)
        first = service.submit(tiny_protocol("first"))
        second = service.submit(tiny_protocol("second"))
        service.drain()
        r1, r2 = first.result(), second.result()
        # one chip: the second job queues behind the first
        assert r1.queue_wait == pytest.approx(0.0)
        assert r2.queue_wait == pytest.approx(r1.service_time)
        assert r2.turnaround == pytest.approx(
            r2.queue_wait + r2.service_time
        )

    def test_deadline_not_expired_when_an_idle_chip_was_free(self):
        # other chips' progress must not expire a job whose own chip
        # could start it immediately
        service = dry_service(n_chips=2)
        grid = service.fleet.workers[0].session.backend.grid
        long_job = service_protocol_variant(grid, variant=2, samples=5000)
        service.submit(long_job, priority=5)
        short = service.submit(tiny_protocol("short"), deadline=5.0)
        service.drain()
        r = short.result()
        assert r.ok, r.state
        assert r.queue_wait <= 5.0

    def test_one_clock_across_chips(self):
        # a job submitted after the fleet clock advanced must not
        # "finish before it was submitted" on a lagging idle chip
        service = dry_service(n_chips=2)
        service.submit(service_protocol_variant(
            service.fleet.workers[0].session.backend.grid, variant=1))
        service.drain()
        assert service.now > 0.0
        late = service.submit(tiny_protocol("late"))
        service.drain()
        r = late.result()
        assert r.submitted_at > 0.0
        assert r.started_at >= r.submitted_at
        assert r.finished_at >= r.started_at
        # the idle chip fast-forwarded exactly to the submission instant
        assert r.queue_wait == pytest.approx(0.0)


class TestAdmissionControl:
    def test_reject_when_queue_full(self):
        service = dry_service(n_chips=1, max_queue_depth=2)
        admitted = [service.submit(tiny_protocol(f"p{i}")) for i in range(2)]
        refused = service.submit(tiny_protocol("overflow"))
        assert refused.done()
        assert refused.result().state is JobState.REJECTED
        service.drain()
        assert all(h.result().ok for h in admitted)
        snap = service.snapshot()
        assert snap["counters"]["rejected"] == 1
        assert snap["counters"]["submitted"] == 3

    def test_shed_lowest_priority_for_hotter_job(self):
        service = dry_service(
            n_chips=1, max_queue_depth=2, admission="shed-lowest"
        )
        cold = service.submit(tiny_protocol("cold"), priority=0)
        warm = service.submit(tiny_protocol("warm"), priority=1)
        hot = service.submit(tiny_protocol("hot"), priority=9)
        assert cold.result().state is JobState.SHED
        service.drain()
        assert warm.result().ok and hot.result().ok
        assert service.snapshot()["counters"]["shed"] == 1

    def test_shed_keeps_incumbent_on_tie(self):
        service = dry_service(
            n_chips=1, max_queue_depth=1, admission="shed-lowest"
        )
        incumbent = service.submit(tiny_protocol("incumbent"), priority=1)
        latecomer = service.submit(tiny_protocol("latecomer"), priority=1)
        assert latecomer.result().state is JobState.REJECTED
        service.drain()
        assert incumbent.result().ok

    def test_bad_admission_policy_rejected_at_config(self):
        with pytest.raises(ValueError, match="admission"):
            ServiceConfig(admission="drop-table")

    def test_zero_depth_queue_refuses_cleanly_under_shed(self):
        # nothing queued to shed: the newcomer is rejected, not a crash
        service = dry_service(
            n_chips=1, max_queue_depth=0, admission="shed-lowest"
        )
        handle = service.submit(tiny_protocol(), priority=9)
        assert handle.result().state is JobState.REJECTED

    def test_terminal_jobs_are_forgotten_by_the_service(self):
        # a long-running service must not pin every served job's result
        service = dry_service(n_chips=1)
        handles = service.submit_many(tiny_protocol(f"p{i}") for i in range(5))
        service.drain()
        assert service._handles == {}
        # the caller's handles still carry the results
        assert all(h.result().ok for h in handles)


class TestProgramCache:
    def test_hit_on_structural_repeat(self):
        service = dry_service(n_chips=1)
        session = service.fleet.workers[0].session
        cache = ProgramCache()
        p1 = tiny_protocol("a")
        program1, hit1 = cache.get_or_compile(p1, session)
        # same structure, different names everywhere
        p2 = Protocol("b").trap("q", (2, 2)).move("q", (2, 10)).release("q")
        program2, hit2 = cache.get_or_compile(p2, session)
        assert (hit1, hit2) == (False, True)
        # the hit shares the compiled schedule but is rebound to p2
        assert program2.schedule is program1.schedule
        assert program2.protocol is p2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_miss_on_different_structure(self):
        service = dry_service(n_chips=1)
        session = service.fleet.workers[0].session
        cache = ProgramCache()
        cache.get_or_compile(tiny_protocol(column=10), session)
        __, hit = cache.get_or_compile(tiny_protocol(column=12), session)
        assert not hit
        assert cache.stats.misses == 2

    def test_key_includes_grid_shape(self):
        from repro import Biochip

        protocol = tiny_protocol()
        small = Biochip.small_chip(rows=32, cols=32).grid
        large = Biochip.small_chip(rows=48, cols=48).grid
        assert program_key(protocol, small) != program_key(protocol, large)

    def test_lru_eviction(self):
        service = dry_service(n_chips=1)
        session = service.fleet.workers[0].session
        cache = ProgramCache(capacity=2)
        a, b, c = (tiny_protocol(column=col) for col in (10, 12, 14))
        cache.get_or_compile(a, session)
        cache.get_or_compile(b, session)
        cache.get_or_compile(a, session)  # refresh a; b is now LRU
        cache.get_or_compile(c, session)  # evicts b
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        __, hit_a = cache.get_or_compile(a, session)
        assert hit_a
        __, hit_b = cache.get_or_compile(b, session)
        assert not hit_b  # was evicted

    def test_cache_hit_keeps_submitters_identity(self):
        # a cached job's result must carry ITS protocol name, handle
        # names and measurement keys, not the first-compiled job's
        service = dry_service(n_chips=1)
        first = Protocol("first").trap("x1", (2, 2)).sense("x1").release("x1")
        second = Protocol("second").trap("y1", (2, 2)).sense("y1").release("y1")
        h1 = service.submit(first)
        h2 = service.submit(second)
        service.drain()
        assert h2.result().cache_hit
        r2 = h2.result()
        assert r2.protocol_name == "second"
        assert list(r2.run.measurements) == ["y1"]
        assert h1.result().run.measurements.keys() == {"x1"}

    def test_failed_job_does_not_poison_its_chip(self):
        service = dry_service(n_chips=1)
        # fails after trapping 'a': without sweeping, the leftover cage
        # at (5, 5) would break every later job near that site
        bad = Protocol("bad").trap("a", (5, 5)).trap("b", (5, 6))
        service.submit(bad)
        retry = service.submit(
            Protocol("retry").trap("g", (5, 5)).release("g")
        )
        service.drain()
        assert retry.result().ok
        assert service.fleet.workers[0].session.backend.cage_count == 0

    def test_unreleased_cages_swept_between_jobs(self):
        service = dry_service(n_chips=1)
        sloppy = Protocol("sloppy").trap("s", (5, 5))  # never releases
        service.submit(sloppy)
        service.submit(Protocol("next").trap("n", (5, 5)).release("n"))
        results = service.drain()
        assert all(r.ok for r in results)
        assert service.fleet.workers[0].session.backend.cage_count == 0

    def test_cached_program_reruns_cleanly(self):
        # handle isolation means one compiled program can serve many runs
        service = dry_service(n_chips=1)
        handles = service.submit_many(
            tiny_protocol(f"job{i}") for i in range(5)
        )
        service.drain()
        assert all(h.result().ok for h in handles)
        stats = service.fleet.cache_stats()
        assert (stats.hits, stats.misses) == (4, 1)


class TestTelemetry:
    def test_snapshot_shape(self):
        service = dry_service(n_chips=2)
        service.submit_many(tiny_protocol(f"p{i}") for i in range(4))
        service.drain()
        snap = service.snapshot()
        assert snap["counters"]["submitted"] == 4
        assert snap["counters"]["completed"] == 4
        assert snap["queue_wait"]["count"] == 4
        assert snap["service_time"]["p99"] >= snap["service_time"]["p50"] > 0
        assert snap["cache"]["hit_rate"] == pytest.approx(0.5)
        assert snap["fleet"]["n_chips"] == 2
        assert snap["fleet"]["throughput"] > 0
        assert set(snap["fleet"]["utilization"]) == {0, 1}

    def test_report_renders(self):
        service = dry_service(n_chips=2)
        service.submit_many(tiny_protocol(f"p{i}") for i in range(3))
        service.drain()
        text = service.report()
        for needle in ("job lifecycle", "latency", "cache hit rate", "chip"):
            assert needle in text

    def test_routing_meters_from_simulator_jobs(self):
        """Batch-planner cost on chip surfaces in the service snapshot."""
        service = ExecutionService.simulator(ServiceConfig(n_chips=1))
        routed = (
            Protocol("routed")
            .trap("a", (2, 2))
            .trap("b", (2, 8))
            .move_many({"a": (8, 2), "b": (8, 8)})
            .release("a")
            .release("b")
        )
        service.submit(routed)
        service.drain()
        routing = service.snapshot()["routing"]
        assert routing["plans"] >= 1
        assert routing["cages_planned"] >= 2
        assert routing["plan_seconds"] > 0.0
        assert routing["plan_time"]["count"] >= 1
        assert "batch routing" in service.report()

    def test_routing_meters_absent_without_batch_moves(self):
        """Dry-run chips never batch-plan: the meters stay zero and the
        report omits the routing table."""
        service = dry_service(n_chips=1)
        service.submit(tiny_protocol())
        service.drain()
        routing = service.snapshot()["routing"]
        assert routing["plans"] == 0
        assert routing["plan_time"]["count"] == 0
        assert "batch routing" not in service.report()

    def test_percentiles_nearest_rank(self):
        from repro.service import Histogram

        h = Histogram("t")
        for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0):
            h.observe(v)
        assert h.percentile(50) == 5.0
        assert h.percentile(90) == 9.0
        assert h.percentile(99) == 10.0
        assert h.percentile(0) == 1.0
        assert Histogram("empty").percentile(99) == 0.0

    def test_utilization_splits_across_chips(self):
        service = dry_service(n_chips=2)
        service.submit_many(tiny_protocol(f"p{i}") for i in range(4))
        service.drain()
        utilization = service.snapshot()["fleet"]["utilization"]
        # identical jobs on 2 chips: both chips near fully busy
        assert all(u == pytest.approx(1.0) for u in utilization.values())


class TestTrafficGenerators:
    def test_seeded_generators_are_reproducible(self):
        from repro import Biochip

        grid = Biochip.small_chip().grid
        a = hot_protocol_traffic(grid, 12, seed=7)
        b = hot_protocol_traffic(grid, 12, seed=7)
        assert [p.fingerprint() for p in a] == [p.fingerprint() for p in b]
        c = hot_protocol_traffic(grid, 12, seed=8)
        assert [p.fingerprint() for p in a] != [p.fingerprint() for p in c]
        pa = mixed_priority_traffic(grid, 9, seed=3)
        pb = mixed_priority_traffic(grid, 9, seed=3)
        assert [pri for __, pri in pa] == [pri for __, pri in pb]
        ba = bursty_traffic(grid, 4, seed=5)
        bb = bursty_traffic(grid, 4, seed=5)
        assert [len(burst) for burst in ba] == [len(burst) for burst in bb]

    def test_hot_traffic_is_hot(self):
        from repro import Biochip

        grid = Biochip.small_chip().grid
        jobs = hot_protocol_traffic(grid, 50, hot_fraction=0.9, seed=0)
        hot_fp = service_protocol_variant(grid, 0).fingerprint()
        share = sum(p.fingerprint() == hot_fp for p in jobs) / len(jobs)
        assert share >= 0.7

    def test_variants_fingerprint_distinctly(self):
        from repro import Biochip

        grid = Biochip.small_chip().grid
        fingerprints = {
            service_protocol_variant(grid, v).fingerprint() for v in range(4)
        }
        assert len(fingerprints) == 4

    def test_bursty_traffic_runs_through_service(self):
        from repro import Biochip

        grid = Biochip.small_chip().grid
        service = ExecutionService.dry_run(
            ServiceConfig(n_chips=2, max_queue_depth=64), grid=grid
        )
        for burst in bursty_traffic(grid, 3, mean_burst_size=4, seed=2):
            service.submit_many(burst)
            service.drain()
        snap = service.snapshot()
        assert snap["counters"]["completed"] == snap["counters"]["submitted"]
        assert snap["counters"]["completed"] >= 3
