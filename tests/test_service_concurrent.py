"""The wall-clock concurrent execution tier, against the virtual-clock
reference.

The deterministic single-threaded :class:`ExecutionService` defines the
behaviour; these tests assert the concurrent tier reproduces it
per-job (identical results modulo completion order) across seeds,
worker counts (``REPRO_CONC_WORKERS``, default 4), thread and process
modes, and a deterministically faulted fleet -- plus the wall-clock
serving semantics the virtual tier cannot express: submit-side
backpressure, the asyncio front end's streaming handles, self-
quarantine with cooldown restarts in real time, and thread-safe
telemetry under hammer.
"""

import asyncio
import os
import re
import threading
import time

import numpy as np
import pytest

from repro import (
    Biochip,
    ConcurrentConfig,
    ConcurrentExecutionService,
    ErrorKind,
    ExecutionService,
    JobState,
    ServiceConfig,
)
from repro.faults import FaultModel, FleetFaultPlan
from repro.service import AsyncExecutionService, Telemetry
from repro.service.concurrent import FleetClock, WallClock
from repro.workloads import hot_protocol_traffic
from repro.workloads.protocols import service_protocol_variant

#: Pool size under test; the CI concurrency job sweeps {1, 4, 8}.
N_WORKERS = int(os.environ.get("REPRO_CONC_WORKERS", "4"))

GRID = Biochip.small_chip().grid


def job_signature(result):
    """Everything a job's outcome is, minus what legitimately varies
    across tiers: which chip ran it, when, and chip-local cage ids
    (a chip's cage counter keeps counting across the jobs it served).
    """
    if result.run is None:
        run_sig = None
    else:
        events = [
            (
                event.kind,
                event.op_id,
                tuple(sorted(
                    (k, v) for k, v in event.detail.items() if k != "cage"
                )),
            )
            for event in result.run.events
        ]
        measurements = tuple(
            (key, tuple(
                (m.reading, m.detected, m.n_samples, round(m.duration, 12))
                for m in result.run.measurements[key]
            ))
            for key in sorted(result.run.measurements)
        )
        run_sig = (tuple(events), round(result.run.wall_time, 9),
                   measurements)
    error_sig = (
        None if result.error is None
        # backend cage ids in messages are chip-allocation-order, like
        # the "cage" event detail -- normalise them away
        else (result.error.kind, re.sub(r"cage \d+", "cage *",
                                        str(result.error)))
    )
    return (result.state, result.attempts, run_sig, error_sig)


def reference_signatures(protocols, faults=None, **config_kwargs):
    """Per-job signatures from the virtual-clock reference tier."""
    service = ExecutionService.dry_run(
        ServiceConfig(n_chips=4, **config_kwargs), faults=faults, grid=GRID
    )
    service.submit_many(protocols)
    return {r.job_id: job_signature(r) for r in service.drain()}


# -- satellite: thread-safe telemetry ---------------------------------------


def test_telemetry_hammer():
    """Concurrent counter/histogram/routing mutation loses nothing."""
    telemetry = Telemetry()
    n_threads, n_each = 8, 2000

    def hammer():
        for i in range(n_each):
            telemetry.count("submitted")
            telemetry.counters["completed"].inc(2)
            telemetry.queue_wait.observe(i)
            telemetry.observe_routing(
                {"plans": 1, "cages_planned": 3, "plan_seconds": 0.001}
            )

    threads = [threading.Thread(target=hammer) for __ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = n_threads * n_each
    assert telemetry.counters["submitted"].value == total
    assert telemetry.counters["completed"].value == 2 * total
    assert telemetry.queue_wait.count == total
    assert telemetry.routing_totals["plans"] == total
    assert telemetry.routing_totals["cages_planned"] == 3 * total
    assert telemetry.routing_totals["plan_seconds"] == pytest.approx(
        0.001 * total
    )
    # summary() must also be safe against a concurrent writer
    writer = threading.Thread(
        target=lambda: [telemetry.service_time.observe(i) for i in range(5000)]
    )
    writer.start()
    while writer.is_alive():
        summary = telemetry.service_time.summary()
        assert summary["count"] >= 0
    writer.join()
    assert telemetry.service_time.count == 5000


# -- satellite: scheduler clock injection -----------------------------------


class _StubClock:
    def __init__(self, value=0.0):
        self.value = value

    def now(self):
        return self.value


def test_scheduler_default_clock_is_fleet_time():
    service = ExecutionService.dry_run(ServiceConfig(n_chips=2), grid=GRID)
    assert isinstance(service.clock, FleetClock)
    assert service.now == service.fleet.now


def test_scheduler_reads_injected_clock():
    clock = _StubClock(value=123.0)
    service = ExecutionService.dry_run(
        ServiceConfig(n_chips=2), grid=GRID, clock=clock
    )
    assert service.now == 123.0
    handle = service.submit(hot_protocol_traffic(GRID, n_jobs=1, seed=0)[0])
    assert handle.job.submitted_at == 123.0


# -- cross-tier equivalence --------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_thread_tier_matches_reference(seed):
    protocols = hot_protocol_traffic(GRID, n_jobs=8, seed=seed)
    reference = reference_signatures(protocols)
    with ConcurrentExecutionService.dry_run(
            ConcurrentConfig(n_workers=N_WORKERS, poll_interval=0.005),
            grid=GRID) as service:
        handles = service.submit_many(protocols)
        results = service.drain(timeout=60.0)
    assert {r.job_id: job_signature(r) for r in results} == reference
    assert all(h.done() for h in handles)


def test_faulted_fleet_matches_reference():
    """Deterministic faults (dead electrodes only, same die on every
    chip) produce identical per-job outcomes -- including identical
    failures and retry counts -- on both tiers."""
    dead = np.zeros((GRID.rows, GRID.cols), dtype=bool)
    dead[:, 21] = True  # the long-travel variant's destination column
    model = FaultModel(shape=(GRID.rows, GRID.cols), dead_electrodes=dead)
    protocols = [
        service_protocol_variant(GRID, variant=v, handle_prefix=f"j{i}h",
                                 name=f"job{i}")
        for i, v in enumerate([0, 3, 1, 0, 3, 2, 0, 3, 1, 0])
    ]
    reference = reference_signatures(
        protocols, faults=model, max_retries=2, quarantine_after=None
    )
    assert any(sig[0] is JobState.FAILED for sig in reference.values()), (
        "fault model too mild: the equivalence run needs failures"
    )
    assert any(sig[0] is JobState.DONE for sig in reference.values())
    with ConcurrentExecutionService.dry_run(
            ConcurrentConfig(
                n_workers=N_WORKERS, max_retries=2, retry_backoff=0.01,
                quarantine_after=None, poll_interval=0.005,
            ),
            faults=model, grid=GRID) as service:
        service.submit_many(protocols)
        results = service.drain(timeout=60.0)
    assert {r.job_id: job_signature(r) for r in results} == reference


def test_process_tier_matches_reference():
    """Spawned process workers (chip pickled once each) reproduce the
    reference too; one pool is reused across seeds to amortise spawn."""
    with ConcurrentExecutionService.dry_run(
            ConcurrentConfig(n_workers=2, mode="process"),
            grid=GRID) as service:
        for seed in (5, 6):
            protocols = hot_protocol_traffic(GRID, n_jobs=6, seed=seed)
            reference = reference_signatures(protocols)
            handles = service.submit_many(protocols)
            results = service.drain(timeout=90.0)
            # the reused pool numbers jobs across batches; re-key by
            # submission position to line up with the fresh reference
            position = {h.job_id: i for i, h in enumerate(handles)}
            got = {position[r.job_id]: job_signature(r) for r in results}
            assert got == reference


# -- wall-clock serving semantics --------------------------------------------


def slow_config(**kwargs):
    """One worker, paced so each job takes ~0.1 wall seconds."""
    defaults = dict(
        n_workers=1, time_scale=0.005, poll_interval=0.005,
        retry_backoff=0.01,
    )
    defaults.update(kwargs)
    return ConcurrentConfig(**defaults)


def test_backpressure_blocks_instead_of_rejecting():
    protocols = hot_protocol_traffic(GRID, n_jobs=8, seed=1)
    with ConcurrentExecutionService.dry_run(
            slow_config(max_queue_depth=1), grid=GRID) as service:
        handles = service.submit_many(protocols, block=True)
        assert all(h.state is not JobState.REJECTED for h in handles)
        results = service.drain(timeout=60.0)
    assert all(r.ok for r in results)
    assert service.telemetry.counters["rejected"].value == 0


def test_bounded_admission_rejects_without_block():
    protocols = hot_protocol_traffic(GRID, n_jobs=8, seed=1)
    with ConcurrentExecutionService.dry_run(
            slow_config(max_queue_depth=1), grid=GRID) as service:
        handles = service.submit_many(protocols)  # block=False
        rejected = [h for h in handles if h.state is JobState.REJECTED]
        assert rejected, "8 instant submits into depth-1 queue must reject"
        service.drain(timeout=60.0)
        counters = {
            name: c.value for name, c in service.telemetry.counters.items()
        }
    assert counters["submitted"] == len(protocols)
    assert (
        counters["completed"] + counters["failed"] + counters["rejected"]
        + counters["shed"] + counters["expired"]
    ) == counters["submitted"]


def test_deadline_expires_in_wall_time():
    protocols = hot_protocol_traffic(GRID, n_jobs=3, seed=4)
    with ConcurrentExecutionService.dry_run(
            slow_config(), grid=GRID) as service:
        first = service.submit(protocols[0])
        starving = service.submit(protocols[1], deadline=0.02)
        results = service.drain(timeout=60.0)
    assert first.result().ok
    assert starving.result().state is JobState.EXPIRED
    assert {r.job_id for r in results} == {first.job_id, starving.job_id}


def test_job_timeout_is_wall_time():
    protocols = hot_protocol_traffic(GRID, n_jobs=1, seed=4)
    with ConcurrentExecutionService.dry_run(
            slow_config(job_timeout=0.02, max_retries=0),
            grid=GRID) as service:
        handle = service.submit(protocols[0])
        result = handle.wait(timeout=60.0)
    assert result.state is JobState.FAILED
    assert result.error.kind is ErrorKind.TIMEOUT
    assert result.run is None
    assert service.telemetry.counters["timeout"].value == 1


def test_quarantine_cooldown_and_manual_restart_in_wall_time():
    """A worker whose chip faults every operation benches itself after
    its first failure; traffic drains to the healthy worker, and a
    manual restart_worker() brings it back (fresh spawn) while parked.
    """
    shape = (GRID.rows, GRID.cols)
    faults = FleetFaultPlan(models={
        0: FaultModel(shape=shape, transient_rate=1.0),
        1: FaultModel.none(shape),
    })
    protocols = hot_protocol_traffic(GRID, n_jobs=6, seed=3)
    with ConcurrentExecutionService.dry_run(
            ConcurrentConfig(
                n_workers=2, max_retries=3, retry_backoff=0.01,
                quarantine_after=1, restart_cooldown=30.0,
                poll_interval=0.005,
            ),
            faults=faults, grid=GRID) as service:
        service.submit_many(protocols)
        results = service.drain(timeout=60.0)
        assert all(r.ok for r in results)
        counters = service.telemetry.counters
        assert counters["retried"].value >= 1
        assert counters["quarantined"].value == 1
        assert counters["restarted"].value == 0  # cooldown far away
        snap = service.snapshot()
        assert snap["pool"]["health"][0] == "quarantined"
        assert snap["faults"]["transient"] >= 1
        service.restart_worker(0)
        deadline = time.monotonic() + 10.0
        while (service.telemetry.counters["restarted"].value == 0
                and time.monotonic() < deadline):
            time.sleep(0.01)
        assert service.telemetry.counters["restarted"].value == 1
        assert service.snapshot()["pool"]["health"][0] == "healthy"


def test_snapshot_exposes_pool_gauges():
    protocols = hot_protocol_traffic(GRID, n_jobs=4, seed=0)
    with ConcurrentExecutionService.dry_run(
            ConcurrentConfig(n_workers=2, poll_interval=0.005),
            grid=GRID) as service:
        service.submit_many(protocols)
        service.drain(timeout=60.0)
        snap = service.snapshot()
        report = service.report()
    pool = snap["pool"]
    assert pool["n_workers"] == 2
    assert set(pool["utilization"]) == {0, 1}
    assert all(0.0 <= u <= 1.0 for u in pool["utilization"].values())
    assert sum(pool["jobs_per_worker"].values()) >= 4
    assert pool["queue_depth"] == 0 and pool["outstanding"] == 0
    assert snap["cache"]["hits"] + snap["cache"]["misses"] >= 4
    assert "pool:" in report and "worker" in report


# -- cache-locality steering -------------------------------------------------


def test_pooled_cache_hit_rate_on_hot_traffic():
    """Regression: warm-fingerprint steering keeps the POOLED hit rate
    near the single-worker rate on hot traffic.

    Before steering, any idle worker grabbed any job, so every variant
    eventually compiled on every chip (hit rate 0.64 at 8 workers vs
    0.95 at 1).  With per-worker lanes the coordinator routes repeats
    to chips that already hold the fingerprint; the floor below allows
    one compile per worker for the hot variant (the initial burst
    legitimately fans out) plus one per cold variant pool-wide.
    """
    protocols = hot_protocol_traffic(GRID, n_jobs=96, seed=5)
    with ConcurrentExecutionService.dry_run(
            ConcurrentConfig(n_workers=N_WORKERS, poll_interval=0.005),
            grid=GRID) as service:
        service.submit_many(protocols)
        results = service.drain(timeout=120.0)
        snap = service.snapshot()
    assert all(r.ok for r in results)
    assert snap["cache"]["hit_rate"] >= 0.85


# -- the asyncio front end ---------------------------------------------------


def test_async_frontend_streams_events_and_results():
    protocols = hot_protocol_traffic(GRID, n_jobs=4, seed=2)

    async def serve():
        async with AsyncExecutionService.dry_run(
                ConcurrentConfig(n_workers=2, poll_interval=0.005),
                grid=GRID) as service:
            handles = await service.submit_many(protocols)
            events = []
            async for event in handles[0].events():
                events.append(event)
            results = [await h for h in handles]
            # late subscription replays the full history: a second
            # iteration after completion yields the same stream
            replayed = [e async for e in handles[0].events()]
            return events, replayed, results

    events, replayed, results = asyncio.run(serve())
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "queued"
    assert "started" in kinds
    assert kinds.count("sense") >= 1  # live mid-protocol sense stream
    assert kinds[-1] == "done"
    assert "result" in events[-1]
    assert replayed == events
    assert all(r.ok for r in results)


def test_async_backpressure_suspends_coroutine_not_loop():
    protocols = hot_protocol_traffic(GRID, n_jobs=6, seed=1)
    ticks = []

    async def ticker(stop):
        while not stop.is_set():
            ticks.append(time.monotonic())
            await asyncio.sleep(0.01)

    async def serve():
        stop = asyncio.Event()
        tick_task = asyncio.create_task(ticker(stop))
        async with AsyncExecutionService.dry_run(
                slow_config(max_queue_depth=1), grid=GRID) as service:
            handles = await service.submit_many(protocols, block=True)
            results = await service.drain(timeout=60.0)
        stop.set()
        await tick_task
        return handles, results

    handles, results = asyncio.run(serve())
    assert all(h.sync.state is not JobState.REJECTED for h in handles)
    assert all(r.ok for r in results)
    # the loop kept turning while submit() was backpressured: the
    # ticker fired throughout the ~0.6s of paced serving
    assert len(ticks) >= 10
