"""Randomized equivalence: legacy dict core vs the ArrayState engine.

Replays identical trap/step/merge/release/sense sequences through the
pre-vectorization :class:`~repro.array.legacy.LegacyCageManager` and the
:class:`~repro.array.state.ArrayState`-backed
:class:`~repro.array.cages.CageManager`, asserting at every operation:

* identical outcome class (success, or ``CageError`` of the same
  category: swap, separation, collision, bounds, oversize step,
  unknown cage);
* identical cage sites, ids, and payloads afterwards;
* identical emitted frames;
* identical seeded sense detections through a :class:`Biochip` backed by
  either engine.

This is the behavioural-parity contract the vectorization refactor must
hold: the grids are an optimization, not a semantics change.
"""

import random

import numpy as np
import pytest

from repro import Biochip
from repro.array import CageError, CageManager, ElectrodeGrid, LegacyCageManager
from repro.bio import mammalian_cell, polystyrene_bead
from repro.physics.constants import um

ERROR_CATEGORIES = (
    "swap",
    "separation",
    "collide",
    "out of bounds",
    "larger than one electrode",
    "no cage",
    "too far apart",
)


def _category(message):
    for marker in ERROR_CATEGORIES:
        if marker in message:
            return marker
    return message


def _apply(fn):
    try:
        return ("ok", fn())
    except CageError as exc:
        return ("err", _category(str(exc)))


def _assert_same_state(legacy, vector):
    assert len(legacy) == len(vector)
    assert legacy.sites() == vector.sites()
    legacy_cages = {c.cage_id: (c.site, c.payload) for c in legacy.cages}
    vector_cages = {c.cage_id: (c.site, c.payload) for c in vector.cages}
    assert legacy_cages == vector_cages


class _Replayer:
    """Drives one random operation stream through both engines."""

    def __init__(self, seed, rows=24, cols=24):
        self.rng = random.Random(seed)
        grid = ElectrodeGrid(rows=rows, cols=cols, pitch=um(20.0))
        self.legacy = LegacyCageManager(grid)
        self.vector = CageManager(grid)
        self.rows = rows
        self.cols = cols

    def _random_site(self):
        return (
            self.rng.randrange(-1, self.rows + 1),
            self.rng.randrange(-1, self.cols + 1),
        )

    def _live_id(self):
        ids = sorted(self.vector._cages)
        if ids and self.rng.random() < 0.9:
            return self.rng.choice(ids)
        return self.rng.randrange(0, 64)  # maybe-dead id

    def _random_moves(self):
        ids = sorted(self.vector._cages)
        if not ids:
            return {self._live_id(): (0, 1)}
        k = self.rng.randint(1, len(ids))
        chosen = self.rng.sample(ids, k)
        moves = {}
        for cage_id in chosen:
            if self.rng.random() < 0.03:
                delta = (self.rng.choice((-2, 2)), self.rng.randint(-1, 1))
            else:
                delta = (self.rng.randint(-1, 1), self.rng.randint(-1, 1))
            moves[cage_id] = delta
        if self.rng.random() < 0.05:
            moves[self.rng.randrange(0, 64)] = (0, 1)  # maybe-unknown mover
        return moves

    def _one_op(self):
        roll = self.rng.random()
        if roll < 0.30:
            site = self._random_site()
            payload = self.rng.choice(("cell", "bead", None))
            return lambda m: m.create(site, payload)
        if roll < 0.75:
            moves = self._random_moves()
            return lambda m: m.step(dict(moves))
        if roll < 0.85:
            a, b = self._live_id(), self._live_id()
            return lambda m: m.merge(a, b)
        cage_id = self._live_id()
        return lambda m: m.release(cage_id)

    def run(self, n_ops=150):
        outcomes = {"ok": 0, "err": 0}
        for index in range(n_ops):
            op = self._one_op()
            legacy_status, legacy_out = _apply(lambda: op(self.legacy))
            vector_status, vector_out = _apply(lambda: op(self.vector))
            assert legacy_status == vector_status, (
                f"op {index}: legacy {legacy_status}:{legacy_out!r} vs "
                f"vector {vector_status}:{vector_out!r}"
            )
            if legacy_status == "err":
                assert legacy_out == vector_out, (
                    f"op {index}: error category {legacy_out!r} vs {vector_out!r}"
                )
            outcomes[legacy_status] += 1
            _assert_same_state(self.legacy, self.vector)
            if index % 25 == 0:
                np.testing.assert_array_equal(
                    self.legacy.frame().phases, self.vector.frame().phases
                )
        return outcomes


@pytest.mark.parametrize("seed", range(8))
def test_randomized_operation_equivalence(seed):
    outcomes = _Replayer(seed).run()
    # the stream must actually exercise both paths
    assert outcomes["ok"] > 20
    assert outcomes["err"] > 20


class TestTargetedErrorEquivalence:
    """The named CageError classes raise identically in both engines."""

    def _pair(self, min_separation=2):
        grid = ElectrodeGrid(rows=16, cols=16, pitch=um(20.0))
        return (
            LegacyCageManager(grid, min_separation),
            CageManager(grid, min_separation),
        )

    def _assert_same_error(self, build, op, min_separation=2, exact=True):
        results = []
        for manager in self._pair(min_separation):
            build(manager)
            with pytest.raises(CageError) as excinfo:
                op(manager)
            results.append(str(excinfo.value))
        if exact:
            assert results[0] == results[1]
        else:
            # engines may name the offending pair in either order
            assert _category(results[0]) == _category(results[1])

    def test_swap(self):
        self._assert_same_error(
            lambda m: (m.create((5, 5)), m.create((5, 7))),
            lambda m: m.step({0: (0, 1), 1: (0, -1)}),
        )

    def test_separation(self):
        # pair naming is perspective-dependent (the vectorized engine
        # reports mover-first, the legacy scan post-order) -- the
        # category and the raise/no-raise decision are the contract
        self._assert_same_error(
            lambda m: (m.create((5, 5)), m.create((5, 7))),
            lambda m: m.step({1: (0, -1)}),
            exact=False,
        )

    def test_bounds(self):
        self._assert_same_error(
            lambda m: m.create((0, 0)),
            lambda m: m.step({0: (-1, 0)}),
        )

    def test_oversize_delta(self):
        self._assert_same_error(
            lambda m: m.create((5, 5)),
            lambda m: m.step({0: (0, 2)}),
        )

    def test_unknown_cage(self):
        self._assert_same_error(
            lambda m: None,
            lambda m: m.step({3: (0, 1)}),
        )

    def test_collision_with_stationary(self):
        # only reachable with separation 1: a mover lands exactly on a
        # stationary neighbour (with separation >= 2 the spacing rule
        # trips first)
        self._assert_same_error(
            lambda m: (m.create((5, 5)), m.create((5, 6))),
            lambda m: m.step({0: (0, 1)}),
            min_separation=1,
            exact=False,
        )

    def test_mover_mover_collision(self):
        self._assert_same_error(
            lambda m: (m.create((5, 4)), m.create((5, 6))),
            lambda m: m.step({0: (0, 1), 1: (0, -1)}),
            min_separation=1,
            exact=False,
        )

    def test_vectorized_and_scalar_paths_name_the_same_pair(self):
        """With several simultaneous separation violations, the >8-mover
        vectorized path and the <=8-mover scalar path must raise the
        identical message (mover-major, first offending offset)."""

        def build():
            grid = ElectrodeGrid(rows=40, cols=40, pitch=um(20.0))
            manager = CageManager(grid)
            for index in range(12):  # movers 0..11 on row 4, 3 apart
                manager.create((4, 3 * index + 2))
            manager.create((6, 8))   # id 12: victim below mover 2's dest
            manager.create((6, 17))  # id 13: victim below mover 5's dest
            return manager

        moves = {i: (1, 0) for i in range(12)}  # all movers to row 5
        errors = []
        for runner in (
            lambda m: m.step(dict(moves)),          # k=12 -> vectorized
            lambda m: m._step_scalar(dict(moves)),  # forced scalar
        ):
            with pytest.raises(CageError) as excinfo:
                runner(build())
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]
        assert "cages 2 and 12" in errors[0]  # first mover in batch order

    def test_atomicity_on_failure(self):
        """A rejected step leaves both engines untouched."""
        for manager in self._pair():
            manager.create((5, 5))
            manager.create((5, 8))
            before = manager.sites()
            with pytest.raises(CageError):
                manager.step({0: (0, 1), 1: (0, -1), 99: (0, 0)})
            assert manager.sites() == before


def _legacy_chip(seed):
    """A Biochip whose cage bookkeeping runs on the legacy dict core."""
    chip = Biochip.small_chip(rows=24, cols=24, seed=seed)
    chip.cages = LegacyCageManager(chip.grid, chip.min_separation)
    return chip


def test_seeded_sense_detections_equivalent():
    """Identical op sequence + seed -> identical readings/detections."""
    seed = 42
    chips = (Biochip.small_chip(rows=24, cols=24, seed=seed), _legacy_chip(seed))
    outcomes = []
    for chip in chips:
        cell = mammalian_cell()
        bead = polystyrene_bead()
        chip.cages.create((2, 2), cell)
        chip.cages.create((2, 6), bead)
        chip.cages.create((8, 2), None)
        chip.cages.create((8, 8), cell)
        chip.cages.step({0: (1, 1), 2: (0, 1)})
        chip.cages.merge(0, 1)
        chip.cages.release(3)
        chip.cages.create((14, 14), bead)
        results = chip.sense_all(n_samples=400)
        results += [(0, chip.sense(0, n_samples=400))]
        outcomes.append(
            [
                (cage_id, r.reading, r.detected, r.expected)
                for cage_id, r in results
            ]
        )
    assert outcomes[0] == outcomes[1]


def test_sense_all_matches_scalar_chain_distribution():
    """Batched sense_all and the per-cage scalar chain agree on who is
    detected (same signals, same thresholds; independent noise draws)."""
    chip = Biochip.small_chip(rows=24, cols=24, seed=3)
    cell = mammalian_cell()
    for row in range(0, 23, 4):
        for col in range(0, 23, 4):
            chip.cages.create((row, col), cell if (row + col) % 8 == 0 else None)
    batched = {cid: r.detected for cid, r in chip.sense_all(n_samples=500)}
    duration = 500 * chip.addresser.frame_scan_time()
    scalar = {
        cage.cage_id: chip._sense_reading(cage, 500, duration).detected
        for cage in chip.cages.cages
    }
    assert batched == scalar
