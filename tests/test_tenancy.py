"""Spatial multi-tenancy: region leases, footprints, frame merging.

Property tests for the :class:`RegionLeaseAllocator` (disjointness
after guard-band inflation, capacity restoration, determinism), the
protocol footprint extractor, the merged-frame cost model, region
enforcement on both backend flavours, and the headline semantic
guarantee: a co-scheduled job's results are bit-identical to its
exclusive-mode run.
"""

import numpy as np
import pytest

from repro import Biochip, ExecutionService, Protocol, ServiceConfig
from repro.core.backend import DryRunBackend, SimulatorBackend
from repro.core.errors import ExecutionError
from repro.core.session import Session
from repro.service import (
    Footprint,
    LeasedBackend,
    RegionLeaseAllocator,
    frame_merge_ratio,
    merged_group_time,
    protocol_footprint,
    routing_separation,
)
from repro.workloads import small_footprint_protocol, small_footprint_traffic

GRID = Biochip.small_chip().grid


def windows_intersect(w1, w2):
    r0, c0, r1, c1 = w1
    s0, d0, s1, d1 = w2
    return r0 < s1 and s0 < r1 and c0 < d1 and d0 < c1


def inflate(window, guard, rows, cols):
    r0, c0, r1, c1 = window
    return (
        max(0, r0 - guard), max(0, c0 - guard),
        min(rows, r1 + guard), min(cols, c1 + guard),
    )


# -- allocator properties -----------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_leases_never_overlap_after_guard_inflation(seed):
    rng = np.random.default_rng(seed)
    allocator = RegionLeaseAllocator(64, 64, guard=2)
    live = []
    for __ in range(200):
        if live and rng.random() < 0.4:
            lease = live.pop(int(rng.integers(len(live))))
            allocator.release(lease)
            continue
        lease = allocator.allocate(
            int(rng.integers(2, 14)), int(rng.integers(2, 14))
        )
        if lease is not None:
            live.append(lease)
        for i, a in enumerate(live):
            for b in live[i + 1:]:
                # even the guard-inflated windows must stay disjoint:
                # two tenants can never get closer than the separation
                wa = inflate(a.window, a.guard, 64, 64)
                assert not windows_intersect(wa, b.window), (a, b)


def test_capacity_restored_on_release():
    allocator = RegionLeaseAllocator(48, 48, guard=2)
    baseline = allocator.free_cells
    assert baseline == 48 * 48
    leases = []
    while True:
        lease = allocator.allocate(9, 9)
        if lease is None:
            break
        leases.append(lease)
    assert len(leases) >= 4  # a 48x48 chip holds at least a 2x2 tiling
    assert allocator.free_cells < baseline
    for lease in leases:
        allocator.release(lease)
    assert allocator.free_cells == baseline
    assert allocator.live_leases == []


@pytest.mark.parametrize("seed", range(4))
def test_allocator_is_deterministic(seed):
    def run_sequence():
        rng = np.random.default_rng(seed)
        allocator = RegionLeaseAllocator(48, 48, guard=2)
        live, trace = [], []
        for __ in range(120):
            if live and rng.random() < 0.35:
                allocator.release(live.pop(0))
                trace.append("release")
                continue
            lease = allocator.allocate(
                int(rng.integers(2, 12)), int(rng.integers(2, 12))
            )
            trace.append(None if lease is None else lease.window)
            if lease is not None:
                live.append(lease)
        return trace

    assert run_sequence() == run_sequence()


def test_allocator_rejects_bad_requests():
    allocator = RegionLeaseAllocator(16, 16, guard=1)
    with pytest.raises(ValueError):
        allocator.allocate(0, 4)
    assert allocator.allocate(17, 4) is None  # larger than the chip
    lease = allocator.allocate(4, 4)
    allocator.release(lease)
    with pytest.raises(ValueError):
        allocator.release(lease)  # double release


def test_exhaustion_returns_none_not_error():
    allocator = RegionLeaseAllocator(12, 12, guard=2)
    assert allocator.allocate(8, 8) is not None
    assert allocator.allocate(8, 8) is None


# -- footprints and the merge cost model -------------------------------------


def test_protocol_footprint_bounding_box():
    protocol = small_footprint_protocol(GRID, variant=0, n_cages=2, travel=4)
    footprint = protocol_footprint(protocol)
    assert footprint == Footprint(row0=0, col0=0, rows=3, cols=5)


def test_protocol_footprint_none_for_whole_chip_commands():
    protocol = Protocol("global").trap("a", (3, 3)).sense_all(samples=10)
    assert protocol_footprint(protocol) is None


def test_routing_separation_reads_backend():
    assert routing_separation(DryRunBackend(grid=GRID)) == 2


def test_merged_group_time_overlaps_dwell_serialises_frames():
    # two tenants: 10s total with 1s of frame programming each ->
    # dwell overlaps (max 9s) but the frame bus serialises (1+1)
    assert merged_group_time([10.0, 8.0], [1.0, 1.0]) == pytest.approx(11.0)
    assert merged_group_time([], []) == 0.0
    assert frame_merge_ratio([4, 4, 4]) == pytest.approx(3.0)
    assert frame_merge_ratio([0, 0]) == 1.0


# -- region enforcement -------------------------------------------------------


@pytest.mark.parametrize("make_backend", [
    lambda: DryRunBackend(grid=GRID),
    lambda: SimulatorBackend(Biochip.small_chip()),
])
def test_out_of_region_operations_rejected(make_backend):
    backend = make_backend()
    backend.set_region((10, 10), 8, 8)
    backend.trap((12, 12))  # inside: fine
    with pytest.raises(ExecutionError, match="outside leased region"):
        backend.trap((5, 5))
    cage = backend.trap((16, 16))
    with pytest.raises(ExecutionError, match="outside leased region"):
        backend.move(cage, (30, 30))
    backend.set_region(None)  # clearing the lease restores the chip
    backend.trap((5, 5))


def test_leased_view_translation_is_invisible():
    protocol = small_footprint_protocol(GRID, variant=1)
    reference = Session.dry_run(grid=GRID).run(protocol)
    backend = DryRunBackend(grid=GRID)
    backend.set_region((20, 17), 9, 11)
    leased = LeasedBackend(backend, offset=(23, 20))
    run = Session(leased).run(protocol)
    assert [(e.kind, e.detail) for e in run.events] == [
        (e.kind, e.detail) for e in reference.events
    ]
    assert run.wall_time == reference.wall_time
    assert leased.frames > 0 and leased.program_time > 0.0


# -- co-scheduling equivalence ------------------------------------------------


def canonical(run):
    return [
        (e.kind, {k: v for k, v in e.detail.items() if k != "cage"})
        for e in run.events
    ]


def test_coscheduled_results_bit_identical_to_exclusive():
    """The satellite guarantee: multi-tenancy changes throughput, never
    results.  Every co-scheduled job's events, wall time and
    measurements equal its exclusive-mode reference exactly."""
    protocols = small_footprint_traffic(GRID, 12, seed=7)
    service = ExecutionService.dry_run(
        ServiceConfig(n_chips=1, max_tenants=4, max_queue_depth=64),
        grid=GRID,
    )
    handles = [service.submit(p) for p in protocols]
    results = service.drain()
    assert {r.state.name for r in results} == {"DONE"}
    snap = service.telemetry.snapshot()
    assert snap["tenancy"]["groups"] >= 1
    assert snap["tenancy"]["co_residency"]["max"] == 4.0
    assert snap["counters"]["merged"] > 0
    for protocol, handle in zip(protocols, handles):
        run = handle.wait().run
        reference = Session.dry_run(grid=GRID).run(protocol)
        assert canonical(run) == canonical(reference)
        assert run.wall_time == pytest.approx(reference.wall_time)
        assert set(run.measurements) == set(reference.measurements)
        for key, expected in reference.measurements.items():
            got = run.measurements[key]
            assert [m.reading for m in got] == [m.reading for m in expected]
            assert [m.detected for m in got] == [m.detected for m in expected]


def test_tenancy_speeds_up_small_footprint_traffic():
    def makespan(max_tenants):
        service = ExecutionService.dry_run(
            ServiceConfig(
                n_chips=1, max_tenants=max_tenants, max_queue_depth=64
            ),
            grid=GRID,
        )
        service.submit_many(small_footprint_traffic(GRID, 16, seed=3))
        results = service.drain()
        assert all(r.ok for r in results)
        return max(r.finished_at for r in results)

    exclusive = makespan(1)
    tenant = makespan(4)
    assert exclusive / tenant >= 2.0


def test_tenancy_disabled_without_backend_support():
    """A backend that never implemented set_region silently serves in
    exclusive mode -- tenancy is an optimisation, not a requirement."""

    class LegacyBackend(DryRunBackend):
        set_region = __import__(
            "repro.core.backend", fromlist=["Backend"]
        ).Backend.set_region

    service = ExecutionService(
        LegacyBackend(grid=GRID),
        ServiceConfig(n_chips=1, max_tenants=4, max_queue_depth=64),
    )
    service.submit_many(small_footprint_traffic(GRID, 6, seed=1))
    results = service.drain()
    assert all(r.ok for r in results)
    assert service.telemetry.counters["leased"].value == 0


def test_tenancy_telemetry_exports_prometheus_gauges():
    service = ExecutionService.dry_run(
        ServiceConfig(n_chips=1, max_tenants=4, max_queue_depth=64),
        grid=GRID,
    )
    service.submit_many(small_footprint_traffic(GRID, 8, seed=2))
    service.drain()
    text = service.telemetry.to_prometheus()
    assert "repro_tenancy_groups_total" in text
    assert "repro_tenancy_co_residency" in text
    assert "repro_tenancy_frame_merge_ratio" in text
    report = service.report()
    assert "multi-tenancy" in report
