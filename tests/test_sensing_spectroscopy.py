"""Unit + property tests for dielectric-spectroscopy classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio import (
    bacterium,
    mammalian_cell,
    polystyrene_bead,
    yeast_cell,
)
from repro.physics.dielectrics import water_medium
from repro.sensing import (
    SpectrumClassifier,
    cm_spectrum,
    discriminating_frequencies,
    measure_spectrum,
)


def standard_library():
    return {
        "live cell": mammalian_cell(viable=True),
        "dead cell": mammalian_cell(viable=False),
        "bead": polystyrene_bead(),
    }


class TestSpectrum:
    def test_cm_spectrum_shape_and_bounds(self):
        spectrum = cm_spectrum(mammalian_cell(), water_medium(), [1e4, 1e5, 1e6])
        assert spectrum.shape == (3,)
        assert np.all(spectrum >= -0.5 - 1e-9)
        assert np.all(spectrum <= 1.0 + 1e-9)

    def test_measure_zero_sigma_is_truth(self):
        freqs = [1e5, 1e6]
        truth = cm_spectrum(polystyrene_bead(), water_medium(), freqs)
        measured = measure_spectrum(polystyrene_bead(), water_medium(), freqs, sigma=0.0)
        assert np.allclose(measured, truth)

    def test_measure_deterministic_with_seed(self):
        freqs = [1e5, 1e6]
        a = measure_spectrum(
            yeast_cell(), water_medium(), freqs, rng=np.random.default_rng(1)
        )
        b = measure_spectrum(
            yeast_cell(), water_medium(), freqs, rng=np.random.default_rng(1)
        )
        assert np.allclose(a, b)

    def test_measure_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            measure_spectrum(yeast_cell(), water_medium(), [1e6], sigma=-0.1)


class TestDiscriminatingFrequencies:
    def test_returns_sorted_unique_probes(self):
        probes = discriminating_frequencies(
            [mammalian_cell(viable=True), mammalian_cell(viable=False)], water_medium(), n_probes=4
        )
        assert probes == sorted(probes)
        assert len(set(probes)) == 4

    def test_probes_separate_live_dead(self):
        medium = water_medium()
        live, dead = mammalian_cell(viable=True), mammalian_cell(viable=False)
        probes = discriminating_frequencies([live, dead], medium, n_probes=3)
        gap = np.abs(
            cm_spectrum(live, medium, probes) - cm_spectrum(dead, medium, probes)
        )
        assert gap.max() > 0.3

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            discriminating_frequencies([mammalian_cell()], water_medium())
        with pytest.raises(ValueError):
            discriminating_frequencies(
                [mammalian_cell(), polystyrene_bead()], water_medium(), n_probes=0
            )


class TestClassifier:
    def test_noiseless_classification_perfect(self):
        classifier = SpectrumClassifier(standard_library(), water_medium())
        for label, particle in standard_library().items():
            assert classifier.classify_particle(particle, sigma=0.0) == label

    def test_noisy_classification_high_accuracy(self):
        classifier = SpectrumClassifier(standard_library(), water_medium())
        samples = [
            (label, particle)
            for label, particle in standard_library().items()
            for _ in range(20)
        ]
        assert classifier.accuracy(samples, sigma=0.05, seed=0) > 0.9

    def test_unknown_particle_rejected(self):
        """A particle far from every template (a bacterium against a
        cell/bead library) should be rejected, not force-assigned."""
        library = {"live cell": mammalian_cell(viable=True), "bead": polystyrene_bead()}
        classifier = SpectrumClassifier(
            library, water_medium(), reject_distance=0.15
        )
        label = classifier.classify_particle(bacterium(), sigma=0.0)
        # bacterium's spectrum differs from both templates
        distances = [
            classifier.distance(
                cm_spectrum(bacterium(), water_medium(), classifier.frequencies),
                key,
            )
            for key in library
        ]
        if min(distances) > 0.15:
            assert label is None

    def test_confusion_counts_total(self):
        classifier = SpectrumClassifier(standard_library(), water_medium())
        samples = [(label, p) for label, p in standard_library().items()] * 5
        counts = classifier.confusion(samples, sigma=0.1, seed=1)
        assert sum(counts.values()) == len(samples)

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            SpectrumClassifier({}, water_medium())

    def test_spectrum_length_mismatch(self):
        classifier = SpectrumClassifier(standard_library(), water_medium())
        with pytest.raises(ValueError):
            classifier.distance(np.zeros(99), "bead")

    def test_single_entry_library_uses_default_probes(self):
        classifier = SpectrumClassifier(
            {"bead": polystyrene_bead()}, water_medium()
        )
        assert len(classifier.frequencies) == 3
        assert classifier.classify_particle(polystyrene_bead(), sigma=0.0) == "bead"

    @given(sigma=st.floats(0.0, 0.03), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_low_noise_never_confuses_live_dead(self, sigma, seed):
        """Property: at sigma <= 0.03 the live/dead contrast (>0.3 at
        the chosen probes) is never misread."""
        library = {
            "live": mammalian_cell(viable=True),
            "dead": mammalian_cell(viable=False),
        }
        classifier = SpectrumClassifier(library, water_medium())
        rng = np.random.default_rng(seed)
        for label, particle in library.items():
            assert (
                classifier.classify_particle(particle, sigma=sigma, rng=rng) == label
            )
