"""Unit + property tests for the bioparticle library and populations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio import (
    PARTICLE_FACTORIES,
    Sample,
    bacterium,
    cells_per_ml,
    erythrocyte,
    make_particle,
    mammalian_cell,
    polystyrene_bead,
    rare_cell_sample,
    tumor_cell,
    yeast_cell,
)
from repro.physics.constants import ul, um
from repro.physics.dielectrics import water_medium


class TestParticleFactories:
    def test_all_factories_build(self):
        for kind in PARTICLE_FACTORIES:
            particle = make_particle(kind)
            assert particle.radius > 0.0
            assert particle.density > 0.0

    def test_make_particle_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown particle kind"):
            make_particle("unobtainium")

    def test_mammalian_cell_size(self):
        """20 um diameter -- the cell size the paper says sets the pitch."""
        cell = mammalian_cell()
        assert cell.diameter == pytest.approx(um(20.0))

    def test_bead_is_always_ndep(self):
        bead = polystyrene_bead()
        medium = water_medium()
        for f in [1e4, 1e5, 1e6, 1e7, 1e8]:
            assert bead.real_cm(medium, f) < 0.0

    def test_viability_changes_dep_signature(self):
        """Live vs dead cells differ in Re[K] somewhere in the band --
        the physical basis of viability sorting."""
        live = mammalian_cell(viable=True)
        dead = mammalian_cell(viable=False)
        medium = water_medium(0.02)
        freqs = np.logspace(4, 7, 50)
        gap = np.max(np.abs(live.real_cm(medium, freqs) - dead.real_cm(medium, freqs)))
        assert gap > 0.2

    def test_tumor_cell_larger_than_erythrocyte(self):
        assert tumor_cell().radius > erythrocyte().radius

    def test_bacterium_is_smallest(self):
        others = [mammalian_cell(), yeast_cell(), erythrocyte(), tumor_cell()]
        assert all(bacterium().radius < p.radius for p in others)

    def test_volume(self):
        bead = polystyrene_bead(um(5))
        assert bead.volume == pytest.approx(4 / 3 * np.pi * (5e-6) ** 3)

    def test_with_radius(self):
        bead = polystyrene_bead(um(5)).with_radius(um(2))
        assert bead.radius == pytest.approx(um(2))

    def test_opacity_validation(self):
        with pytest.raises(ValueError):
            polystyrene_bead().__class__(
                name="x",
                dielectric=water_medium(),
                radius=um(1),
                opacity=1.5,
            )

    @given(log_f=st.floats(3.0, 8.5))
    @settings(max_examples=80, deadline=None)
    def test_cm_bounds_for_all_cells(self, log_f):
        """Every built-in particle has Re[K] in the physical band."""
        medium = water_medium()
        for kind in PARTICLE_FACTORIES:
            k = make_particle(kind).real_cm(medium, 10.0**log_f)
            assert -0.5 - 1e-9 <= k <= 1.0 + 1e-9


class TestSample:
    def test_expected_counts(self):
        sample = Sample(volume=ul(4.0))
        sample.add(polystyrene_bead(), cells_per_ml(1e5))
        # 1e5/ml * 4 ul = 400 expected
        assert sample.expected_total() == pytest.approx(400.0)

    def test_draw_deterministic_counts(self):
        sample = Sample(volume=ul(4.0)).add(polystyrene_bead(), cells_per_ml(1e5))
        drawn = sample.draw((8e-3, 8e-3), 100e-6, poisson=False)
        assert len(drawn) == 400

    def test_draw_poisson_near_expectation(self):
        sample = Sample(volume=ul(4.0)).add(polystyrene_bead(), cells_per_ml(1e5))
        drawn = sample.draw((8e-3, 8e-3), 100e-6, rng=np.random.default_rng(0))
        assert 300 < len(drawn) < 500

    def test_positions_inside_chamber(self):
        sample = Sample(volume=ul(1.0)).add(mammalian_cell(), cells_per_ml(1e5))
        drawn = sample.draw((8e-3, 8e-3), 100e-6, rng=np.random.default_rng(1))
        for p in drawn:
            x, y, z = p.position
            assert 0.0 <= x <= 8e-3
            assert 0.0 <= y <= 8e-3
            assert 0.0 < z <= 100e-6

    def test_size_scatter(self):
        sample = Sample(volume=ul(4.0)).add(
            mammalian_cell(), cells_per_ml(1e5), size_cv=0.1
        )
        drawn = sample.draw((8e-3, 8e-3), 100e-6, rng=np.random.default_rng(2))
        radii = np.array([p.particle.radius for p in drawn])
        cv = radii.std() / radii.mean()
        assert 0.05 < cv < 0.2

    def test_zero_cv_gives_identical_radii(self):
        sample = Sample(volume=ul(1.0)).add(
            polystyrene_bead(), cells_per_ml(1e5), size_cv=0.0
        )
        drawn = sample.draw((8e-3, 8e-3), 100e-6, rng=np.random.default_rng(3))
        radii = {p.particle.radius for p in drawn}
        assert radii == {polystyrene_bead().radius}

    def test_composition(self):
        sample = Sample(volume=ul(4.0))
        sample.add(mammalian_cell(), cells_per_ml(3e5))
        sample.add(polystyrene_bead(), cells_per_ml(1e5))
        comp = sample.composition()
        assert comp["viable mammalian cell"] == pytest.approx(0.75)
        assert comp["polystyrene bead"] == pytest.approx(0.25)

    def test_rejects_bad_volume(self):
        with pytest.raises(ValueError):
            Sample(volume=0.0)

    def test_rejects_bad_extent(self):
        sample = Sample(volume=ul(1.0)).add(polystyrene_bead(), cells_per_ml(1e4))
        with pytest.raises(ValueError):
            sample.draw((0.0, 8e-3), 100e-6)

    def test_rare_cell_sample_composition(self):
        sample = rare_cell_sample(
            mammalian_cell(), tumor_cell(), background_per_ml=1e6, rare_per_ml=100.0
        )
        comp = sample.composition()
        assert comp["tumor cell"] < 1e-3
        assert comp["viable mammalian cell"] > 0.999

    def test_draw_reproducible(self):
        sample = Sample(volume=ul(2.0)).add(yeast_cell(), cells_per_ml(1e5))
        a = sample.draw((8e-3, 8e-3), 100e-6, rng=np.random.default_rng(9))
        b = sample.draw((8e-3, 8e-3), 100e-6, rng=np.random.default_rng(9))
        assert len(a) == len(b)
        assert all(np.allclose(p.position, q.position) for p, q in zip(a, b))
