"""Unit tests for repro.physics.constants."""

import math

import pytest

from repro.physics import constants as C


class TestUnitHelpers:
    def test_um_round_trip(self):
        assert C.to_um(C.um(20.0)) == pytest.approx(20.0)

    def test_um_is_metres(self):
        assert C.um(1.0) == pytest.approx(1e-6)

    def test_nm_is_metres(self):
        assert C.nm(350.0) == pytest.approx(3.5e-7)

    def test_mm(self):
        assert C.mm(8.0) == pytest.approx(8e-3)

    def test_ul_round_trip(self):
        assert C.to_ul(C.ul(4.0)) == pytest.approx(4.0)

    def test_ul_is_cubic_metres(self):
        assert C.ul(1.0) == pytest.approx(1e-9)

    def test_nl(self):
        assert C.nl(1000.0) == pytest.approx(C.ul(1.0))

    def test_capacitance_units_ordering(self):
        assert C.pf(1.0) > C.ff(1.0) > C.af(1.0)

    def test_af(self):
        assert C.af(175.0) == pytest.approx(1.75e-16)

    def test_frequency_units(self):
        assert C.mhz(1.0) == pytest.approx(C.khz(1000.0))

    def test_um_per_s(self):
        assert C.um_per_s(100.0) == pytest.approx(1e-4)

    def test_time_units(self):
        assert C.days(1.0) == pytest.approx(24 * C.hours(1.0))
        assert C.hours(1.0) == pytest.approx(60 * C.minutes(1.0))

    def test_angular_frequency(self):
        assert C.angular_frequency(1.0) == pytest.approx(2.0 * math.pi)


class TestPhysicalHelpers:
    def test_thermal_energy_room_temperature(self):
        # kT at 25 degC is about 4.11e-21 J
        assert C.thermal_energy() == pytest.approx(4.116e-21, rel=1e-3)

    def test_thermal_energy_scales_with_temperature(self):
        assert C.thermal_energy(2 * C.ROOM_TEMPERATURE) == pytest.approx(
            2 * C.thermal_energy()
        )

    def test_sphere_volume_of_10um_cell(self):
        volume = C.sphere_volume(C.um(10.0))
        assert volume == pytest.approx(4.18879e-15, rel=1e-4)

    def test_sphere_volume_radius_round_trip(self):
        radius = C.um(7.3)
        assert C.sphere_radius_from_volume(C.sphere_volume(radius)) == pytest.approx(
            radius
        )

    def test_water_constants_sane(self):
        assert 70.0 < C.WATER_RELATIVE_PERMITTIVITY < 90.0
        assert 0.5e-3 < C.WATER_VISCOSITY < 2e-3
        assert 900.0 < C.WATER_DENSITY < 1100.0

    def test_buffer_less_conductive_than_saline(self):
        assert C.DEP_BUFFER_CONDUCTIVITY < C.SALINE_CONDUCTIVITY
