"""Unit tests for the command registry and the batch commands."""

from dataclasses import dataclass

import pytest

from repro import Biochip, Protocol, ProtocolError, Session, default_registry
from repro.bio import mammalian_cell
from repro.core.registry import CommandRegistry, CommandSpec
from repro.scheduling import OpType


@dataclass(frozen=True)
class BogusCmd:
    payload: int = 0


@dataclass(frozen=True)
class WashCmd:
    """A third-party command: hold a cage under buffer flow."""

    handle: str
    seconds: float


class WashSpec(CommandSpec):
    def validate(self, cmd, state, where):
        state.require_live(cmd.handle, where)
        if cmd.seconds <= 0.0:
            raise ProtocolError(f"{where}: wash needs positive duration")

    def lower(self, cmd, ctx, op_id):
        ctx.add(
            op_id,
            OpType.INCUBATE,
            ctx.duration_model.incubate(cmd.seconds),
            after=[ctx.last_op[cmd.handle]],
        )
        ctx.last_op[cmd.handle] = op_id

    def execute(self, cmd, backend, ctx, op_id):
        backend.incubate(cmd.seconds)
        ctx.result.record(op_id, "wash", handle=cmd.handle, seconds=cmd.seconds)


@pytest.fixture
def wash_registered():
    default_registry.register(WashCmd, WashSpec)
    yield
    default_registry.unregister(WashCmd)


class TestRegistry:
    def test_builtins_registered(self):
        names = {t.__name__ for t in default_registry.command_types()}
        assert {
            "TrapCmd",
            "MoveCmd",
            "MergeCmd",
            "SenseCmd",
            "IncubateCmd",
            "ReleaseCmd",
            "MoveManyCmd",
            "SenseAllCmd",
        } <= names

    def test_unknown_command_rejected_at_validate(self):
        protocol = Protocol("bad").trap("a", (0, 0)).add(BogusCmd())
        with pytest.raises(ProtocolError, match="unknown command"):
            protocol.validate()

    def test_unknown_command_rejected_at_compile(self):
        protocol = Protocol("bad").add(BogusCmd())
        with pytest.raises(ProtocolError):
            Session.simulator().compile(protocol)

    def test_spec_for_unregistered_raises(self):
        with pytest.raises(ProtocolError, match="not registered"):
            default_registry.spec_for(BogusCmd())

    def test_double_registration_guarded(self):
        registry = CommandRegistry()
        registry.register(BogusCmd, WashSpec)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(BogusCmd, WashSpec)
        registry.register(BogusCmd, WashSpec, replace=True)

    def test_decorator_registration(self):
        registry = CommandRegistry()

        @registry.register(BogusCmd)
        class BogusSpec(CommandSpec):
            pass

        assert isinstance(registry.get(BogusCmd), BogusSpec)


class TestCustomCommandEndToEnd:
    """A command registered from outside core runs validate -> compile ->
    execute without any core file changes."""

    def protocol(self):
        return (
            Protocol("wash-assay")
            .trap("cell", (5, 5), mammalian_cell())
            .add(WashCmd("cell", 30.0))
            .sense("cell", samples=500)
            .release("cell")
        )

    def test_validates(self, wash_registered):
        assert self.protocol().validate()

    def test_validation_rules_apply(self, wash_registered):
        protocol = Protocol("bad").trap("a", (0, 0)).add(WashCmd("a", -1.0))
        with pytest.raises(ProtocolError, match="positive duration"):
            protocol.validate()

    def test_compiles_with_duration(self, wash_registered):
        session = Session.simulator()
        program = session.compile(self.protocol())
        wash_ops = [
            op
            for op in program.graph.operations()
            if op.op_id.endswith("WashCmd")
        ]
        assert len(wash_ops) == 1
        assert wash_ops[0].duration == pytest.approx(30.0)

    def test_executes_on_simulator(self, wash_registered):
        chip = Biochip.small_chip()
        result = Session.simulator(chip).run(self.protocol())
        assert result.count("wash") == 1
        assert chip.cage_count == 0
        # the wash advanced the chip clock
        assert result.wall_time > 30.0

    def test_unregistered_again_rejected(self):
        protocol = Protocol("bad").trap("a", (0, 0)).add(WashCmd("a", 1.0))
        with pytest.raises(ProtocolError, match="unknown command"):
            protocol.validate()


class TestMoveManyValidation:
    def test_requires_live_handles(self):
        protocol = Protocol("bad").trap("a", (0, 0)).move_many({"ghost": (5, 5)})
        with pytest.raises(ProtocolError, match="not defined"):
            protocol.validate()

    def test_rejects_duplicate_handles(self):
        protocol = (
            Protocol("bad")
            .trap("a", (0, 0))
            .move_many([("a", (5, 5)), ("a", (9, 9))])
        )
        with pytest.raises(ProtocolError, match="more than once"):
            protocol.validate()

    def test_rejects_empty_group(self):
        protocol = Protocol("bad").move_many({})
        with pytest.raises(ProtocolError, match="at least one"):
            protocol.validate()

    def test_rejects_dead_handles(self):
        protocol = (
            Protocol("bad").trap("a", (0, 0)).release("a").move_many({"a": (5, 5)})
        )
        with pytest.raises(ProtocolError, match="after release"):
            protocol.validate()

    def test_off_grid_goal_rejected_at_compile(self):
        from repro import CompileError

        protocol = Protocol("bad").trap("a", (0, 0)).move_many({"a": (500, 500)})
        with pytest.raises(CompileError, match="outside"):
            Session.simulator().compile(protocol)

    def test_goals_property(self):
        protocol = Protocol("p").trap("a", (0, 0)).move_many({"a": (5, 5)})
        assert protocol.commands[-1].goals == {"a": (5, 5)}


class TestSenseAllValidation:
    def test_rejects_bad_samples(self):
        protocol = Protocol("bad").sense_all(samples=0)
        with pytest.raises(ProtocolError, match="samples"):
            protocol.validate()

    def test_valid_with_no_cages(self):
        assert Protocol("empty-scan").sense_all().validate()
