"""Unit tests for the technology library and selection (claim C1)."""

import pytest

from repro.physics.constants import um, um_per_s
from repro.technology import (
    ApplicationRequirements,
    NODES_BY_NAME,
    PAPER_NODE,
    STANDARD_NODES,
    TechnologySelector,
    evaluate_node,
    get_node,
)


def paper_requirements(**kwargs):
    defaults = dict(
        cell_radius=um(10.0),
        electrode_pitch=um(20.0),
        target_speed=um_per_s(50.0),
        array_side=320,
    )
    defaults.update(kwargs)
    return ApplicationRequirements(**defaults)


class TestNodeLibrary:
    def test_nodes_ordered_oldest_first(self):
        years = [n.year for n in STANDARD_NODES]
        assert years == sorted(years)

    def test_voltage_shrinks_with_scaling(self):
        """The premise of claim C1: newer nodes drive less voltage."""
        v_io = [n.io_voltage for n in STANDARD_NODES]
        assert v_io[0] == 5.0
        assert v_io[-1] < 2.0
        # monotone non-increasing
        assert all(a >= b for a, b in zip(v_io, v_io[1:]))

    def test_mask_cost_grows_with_scaling(self):
        costs = [n.mask_set_cost for n in STANDARD_NODES]
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_get_node(self):
        assert get_node("0.35um") is PAPER_NODE
        with pytest.raises(ValueError):
            get_node("5nm")

    def test_paper_node_values(self):
        assert PAPER_NODE.core_voltage == pytest.approx(3.3)
        assert PAPER_NODE.max_drive_voltage == pytest.approx(5.0)

    def test_cost_per_mm2_positive(self):
        for node in STANDARD_NODES:
            assert node.cost_per_mm2() > 0.0


class TestNodeEvaluation:
    def test_force_follows_v_squared(self):
        req = paper_requirements()
        old = evaluate_node(get_node("0.8um"), req)  # 5 V
        new = evaluate_node(get_node("0.13um"), req)  # 2.5 V
        assert old.dep_force / new.dep_force == pytest.approx(4.0)

    def test_every_node_meets_cell_pitch(self):
        """Biology sets the pitch at ~20 um; every node since the late
        80s can draw that -- density is not the binding constraint."""
        req = paper_requirements()
        feasible = [evaluate_node(n, req).feasible_pitch for n in STANDARD_NODES]
        assert sum(feasible) >= len(STANDARD_NODES) - 2

    def test_speed_margin_definition(self):
        req = paper_requirements()
        ev = evaluate_node(PAPER_NODE, req)
        assert ev.speed_margin == pytest.approx(ev.dep_force / ev.drag_force)

    def test_paper_node_meets_requirements(self):
        ev = evaluate_node(PAPER_NODE, paper_requirements())
        assert ev.meets_requirements

    def test_die_cost_grows_with_node(self):
        req = paper_requirements()
        old_cost = evaluate_node(get_node("0.35um"), req).die_cost
        new_cost = evaluate_node(get_node("90nm"), req).die_cost
        assert new_cost > old_cost


class TestSelector:
    def test_claim_c1_older_node_wins(self):
        """The headline claim: the best node is NOT the newest one."""
        selector = TechnologySelector(paper_requirements())
        best = selector.best()
        newest = STANDARD_NODES[-1]
        assert best.node.year < newest.year
        assert best.node.feature_size > newest.feature_size

    def test_best_node_is_mid_90s_class(self):
        """With the paper's numbers the optimum sits in the 5 V-capable
        0.35-0.8 um window."""
        selector = TechnologySelector(paper_requirements())
        best = selector.best()
        assert 0.3e-6 <= best.node.feature_size <= 1.3e-6

    def test_force_vs_node_curve_monotone_with_voltage(self):
        selector = TechnologySelector(paper_requirements())
        curve = selector.force_vs_node()
        for (__, v_a, f_a), (__, v_b, f_b) in zip(curve, curve[1:]):
            if v_a > v_b:
                assert f_a > f_b

    def test_no_feasible_node_raises(self):
        req = paper_requirements(
            cell_radius=um(0.2),
            electrode_pitch=um(0.5),  # below every node's pitch floor
            target_speed=um_per_s(1000.0),
        )
        selector = TechnologySelector(req)
        with pytest.raises(ValueError):
            selector.best()

    def test_evaluations_cover_all_nodes(self):
        selector = TechnologySelector(paper_requirements())
        assert len(selector.evaluate_all()) == len(STANDARD_NODES)

    def test_fom_zero_for_infeasible(self):
        req = paper_requirements(target_speed=1.0)  # 1 m/s: impossible
        selector = TechnologySelector(req)
        assert all(e.figure_of_merit == 0.0 for e in selector.evaluate_all())
