"""Unit tests for detection, ROC and localisation."""

import math

import numpy as np
import pytest

from repro.array import ElectrodeGrid
from repro.physics.constants import um
from repro.sensing import (
    ConfusionMatrix,
    ThresholdDetector,
    centroid_localisation,
    detection_probability,
    evaluate_detector,
    q_function,
    roc_curve,
    threshold_for_false_alarm,
)


class TestGaussianDetection:
    def test_q_function_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(3.0) == pytest.approx(0.00135, rel=0.01)

    def test_threshold_for_false_alarm(self):
        thr = threshold_for_false_alarm(1.0, 0.001)
        assert q_function(thr) == pytest.approx(0.001, rel=1e-6)

    def test_threshold_validates(self):
        with pytest.raises(ValueError):
            threshold_for_false_alarm(1.0, 0.7)
        with pytest.raises(ValueError):
            threshold_for_false_alarm(0.0, 0.01)

    def test_detection_probability_improves_with_snr(self):
        thr = threshold_for_false_alarm(1.0, 0.001)
        weak = detection_probability(1.0, 1.0, thr)
        strong = detection_probability(6.0, 1.0, thr)
        assert strong > weak
        assert strong > 0.99

    def test_roc_monotone(self):
        points = roc_curve(signal=3.0, noise_rms=1.0, n_points=40)
        pfa = [p for p, __ in points]
        pd = [d for __, d in points]
        # sweeping threshold downward raises both rates together
        assert all(a >= b - 1e-12 for a, b in zip(pfa, pfa[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(pd, pd[1:]))

    def test_roc_detection_dominates_false_alarm(self):
        """For positive signal, Pd >= Pfa at every threshold."""
        for pfa, pd in roc_curve(signal=2.0, noise_rms=1.0):
            assert pd >= pfa - 1e-12


class TestThresholdDetector:
    def test_magnitude_mode(self):
        detector = ThresholdDetector(threshold=0.5)
        assert detector.decide(0.6)
        assert detector.decide(-0.6)
        assert not detector.decide(0.4)

    def test_polarity_modes(self):
        positive = ThresholdDetector(threshold=0.5, polarity=1)
        negative = ThresholdDetector(threshold=0.5, polarity=-1)
        assert positive.decide(0.6) and not positive.decide(-0.6)
        assert negative.decide(-0.6) and not negative.decide(0.6)

    def test_decide_map(self):
        detector = ThresholdDetector(threshold=0.5)
        out = detector.decide_map(np.array([0.1, 0.9, -0.7]))
        assert out.tolist() == [False, True, True]

    def test_validates(self):
        with pytest.raises(ValueError):
            ThresholdDetector(threshold=0.0)
        with pytest.raises(ValueError):
            ThresholdDetector(threshold=0.5, polarity=2)


class TestConfusionMatrix:
    def test_record_and_rates(self):
        matrix = ConfusionMatrix()
        matrix.record(True, True)
        matrix.record(True, False)
        matrix.record(False, False)
        matrix.record(False, True)
        assert matrix.total == 4
        assert matrix.sensitivity == pytest.approx(0.5)
        assert matrix.specificity == pytest.approx(0.5)
        assert matrix.accuracy == pytest.approx(0.5)

    def test_evaluate_detector(self):
        readings = np.array([[0.9, 0.1], [0.05, -0.8]])
        truth = np.array([[True, False], [False, True]])
        matrix = evaluate_detector(ThresholdDetector(0.5), readings, truth)
        assert matrix.true_positive == 2
        assert matrix.true_negative == 2
        assert matrix.accuracy == 1.0

    def test_evaluate_shape_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_detector(
                ThresholdDetector(0.5), np.zeros((2, 2)), np.zeros((3, 3), dtype=bool)
            )


class TestLocalisation:
    def test_single_bright_pixel(self):
        grid = ElectrodeGrid(8, 8, um(20))
        readings = np.zeros((3, 3))
        readings[1, 1] = 1.0
        x, y = centroid_localisation(readings, origin=(2, 4), pitch=grid.pitch)
        assert x == pytest.approx((4 + 1 + 0.5) * grid.pitch)
        assert y == pytest.approx((2 + 1 + 0.5) * grid.pitch)

    def test_subpixel_interpolation(self):
        readings = np.zeros((1, 3))
        readings[0, 1] = 1.0
        readings[0, 2] = 1.0
        x, __ = centroid_localisation(readings, origin=(0, 0), pitch=1.0)
        assert x == pytest.approx(2.0)  # between pixel centres 1.5 and 2.5

    def test_negative_signals_use_magnitude(self):
        readings = np.array([[0.0, -1.0, 0.0]])
        x, __ = centroid_localisation(readings, pitch=1.0)
        assert x == pytest.approx(1.5)

    def test_zero_intensity_raises(self):
        with pytest.raises(ValueError):
            centroid_localisation(np.zeros((3, 3)))
