"""Unit tests for the semi-analytic field solver."""

import math

import numpy as np
import pytest

from repro.physics.constants import um
from repro.physics.fields import (
    ArrayFieldModel,
    ElectrodePatch,
    cage_field_model,
    checkerboard_cage_patches,
    rectangle_solid_angle,
)


class TestSolidAngle:
    def test_full_plane_limit(self):
        """A huge rectangle seen from close by subtends ~2*pi."""
        omega = rectangle_solid_angle(-1.0, 1.0, -1.0, 1.0, 1e-6)
        assert omega == pytest.approx(2.0 * math.pi, rel=1e-4)

    def test_far_field_point_source(self):
        """Far away, Omega -> area * z / r^3."""
        a = 1e-5
        z = 1.0
        omega = rectangle_solid_angle(-a / 2, a / 2, -a / 2, a / 2, z)
        assert omega == pytest.approx(a * a * z / z**3, rel=1e-6)

    def test_off_patch_is_smaller(self):
        on = rectangle_solid_angle(-1, 1, -1, 1, 0.5)
        off = rectangle_solid_angle(4, 6, -1, 1, 0.5)
        assert off < on

    def test_vectorised(self):
        z = np.array([0.1, 1.0, 10.0])
        omega = rectangle_solid_angle(-1.0, 1.0, -1.0, 1.0, z)
        assert omega.shape == (3,)
        assert omega[0] > omega[1] > omega[2]

    def test_symmetry(self):
        """Symmetric positions give the same solid angle."""
        left = rectangle_solid_angle(-3.0, -1.0, -1.0, 1.0, 0.7)
        right = rectangle_solid_angle(1.0, 3.0, -1.0, 1.0, 0.7)
        assert left == pytest.approx(right, rel=1e-12)


class TestElectrodePatch:
    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ElectrodePatch(0.0, 0.0, 0.0, 1.0, 1.0)


class TestArrayFieldModel:
    def _single_patch_model(self, v=1.0):
        patch = ElectrodePatch(-um(10), um(10), -um(10), um(10), v)
        return ArrayFieldModel(patches=[patch])

    def test_potential_approaches_drive_at_surface(self):
        """Just above the centre of a driven patch, phi ~ V."""
        model = self._single_patch_model(2.0)
        phi = model.potential(0.0, 0.0, um(0.1))
        assert abs(phi) == pytest.approx(2.0, rel=0.05)

    def test_potential_decays_with_height(self):
        model = self._single_patch_model()
        phi_low = abs(model.potential(0.0, 0.0, um(5)))
        phi_high = abs(model.potential(0.0, 0.0, um(50)))
        assert phi_low > phi_high

    def test_rejects_points_below_surface(self):
        model = self._single_patch_model()
        with pytest.raises(ValueError):
            model.potential(0.0, 0.0, -um(1))

    def test_field_points_away_from_positive_patch_above_centre(self):
        model = self._single_patch_model(1.0)
        ex, ey, ez = model.field(0.0, 0.0, um(5))
        # directly above the centre the field is mostly vertical
        assert abs(ez) > abs(ex)
        assert abs(ez) > abs(ey)

    def test_grounded_lid_pulls_potential_down(self):
        no_lid = self._single_patch_model()
        with_lid = ArrayFieldModel(
            patches=list(no_lid.patches), lid_height=um(50), reflections=2
        )
        z = um(40)
        assert abs(with_lid.potential(0, 0, z)) < abs(no_lid.potential(0, 0, z))

    def test_e_squared_nonnegative(self):
        model = self._single_patch_model()
        xs = np.linspace(-um(30), um(30), 7)
        e2 = model.e_squared(xs, 0.0, um(10))
        assert np.all(e2 >= 0.0)


class TestCagePattern:
    def test_patch_count(self):
        patches = checkerboard_cage_patches(um(20), 3.3, radius_cells=2)
        assert len(patches) == 25

    def test_centre_patch_is_counter_phase(self):
        patches = checkerboard_cage_patches(um(20), 3.3, radius_cells=1)
        centre = [
            p for p in patches if p.x_min < 0 < p.x_max and p.y_min < 0 < p.y_max
        ]
        assert len(centre) == 1
        assert centre[0].amplitude == -3.3

    def test_cage_has_central_field_minimum(self):
        """|E|^2 above the cage centre is lower than above the in-phase
        neighbours: that's what makes it a trap for nDEP particles."""
        pitch = um(20)
        model = cage_field_model(pitch, 3.3, lid_height=um(100))
        # the closed minimum forms about one pitch above the surface
        # (where the cage physics levitates the particle)
        z = um(25)
        e2_centre = model.e_squared(0.0, 0.0, z)
        e2_neighbor = model.e_squared(pitch, 0.0, z)
        assert e2_centre < e2_neighbor

    def test_lateral_symmetry(self):
        pitch = um(20)
        model = cage_field_model(pitch, 3.3, lid_height=um(100))
        z = um(15)
        left = model.e_squared(-um(5), 0.0, z)
        right = model.e_squared(um(5), 0.0, z)
        assert left == pytest.approx(right, rel=1e-6)

    def test_force_scale_grows_with_voltage_squared(self):
        """The gradient of E^2 near the cage scales as V^2 (claim C1)."""
        pitch = um(20)
        z = um(15)
        g_low = cage_field_model(pitch, 1.0, um(100)).grad_e2(um(5), 0.0, z)
        g_high = cage_field_model(pitch, 2.0, um(100)).grad_e2(um(5), 0.0, z)
        ratio = g_high[0] / g_low[0]
        assert ratio == pytest.approx(4.0, rel=1e-6)
