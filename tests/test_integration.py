"""Integration tests: the full stack working together.

These tests exercise multi-module paths end to end -- the scenarios a
downstream user of the library would actually run -- and check the
paper's claims at the *system* level rather than per-module.
"""

import numpy as np
import pytest

from repro import Biochip, Protocol, Session
from repro.array import CageManager
from repro.array.addressing import RowColumnAddresser, TimingBudget
from repro.bio import Sample, cells_per_ml, mammalian_cell, polystyrene_bead
from repro.core.compiler import compile_protocol
from repro.designflow import electronic_scenario, fluidic_scenario
from repro.packaging import paper_device_stack
from repro.physics.constants import ul, um, um_per_s
from repro.routing import BatchRouter, MotionPlanner
from repro.technology import TechnologySelector, ApplicationRequirements
from repro.workloads import random_permutation_workload, split_sort_workload


class TestPlatformPhysicsConsistency:
    """The chip's configured operating point must be physically
    self-consistent -- voltage, speed, cage stability all agree."""

    def test_paper_chip_can_drag_beads_at_speed(self):
        chip = Biochip.small_chip()
        assert chip.verify_speed(polystyrene_bead(um(5)))

    def test_cage_levitation_inside_chamber(self):
        chip = Biochip.small_chip()
        cage = chip.dep_cage(polystyrene_bead(um(5)))
        height = cage.levitation_height()
        assert height is not None
        assert 0.0 < height < chip.chamber.height

    def test_packaging_chamber_feeds_field_model(self):
        """The Fig. 3 stack's chamber height is what the DEP cage model
        sees as lid height -- and the cage still works."""
        stack = paper_device_stack()
        chip = Biochip.small_chip()
        chip.chamber = stack.chamber()
        cage = chip.dep_cage(polystyrene_bead(um(5)))
        assert cage.levitation_height() is not None


class TestSortingPipeline:
    """Workload -> batch router -> cage manager -> timing accounting."""

    def test_split_sort_executes(self):
        chip = Biochip.small_chip(rows=30, cols=30)
        requests, labels = split_sort_workload(chip.grid, n_per_class=4, seed=0)
        for request in requests:
            chip.cages.create(request.start)
        plan = BatchRouter(chip.grid).plan(requests)
        planner = MotionPlanner(chip.cages, chip.addresser, cage_speed=chip.cage_speed)
        planner.execute(plan)
        final_sites = {c.site for c in chip.cages.cages}
        assert final_sites == {r.goal for r in requests}
        # the paper's C2 shape at pipeline level
        assert planner.electronics_fraction() < 1e-3

    def test_sorting_wall_clock_scales_with_distance_not_cages(self):
        """Parallel manipulation: 8 cages take barely longer than 2."""
        def run(n_cages, seed):
            grid_chip = Biochip.small_chip(rows=40, cols=40, seed=seed)
            requests = random_permutation_workload(
                grid_chip.grid, n_cages=n_cages, seed=seed
            )
            for request in requests:
                grid_chip.cages.create(request.start)
            plan = BatchRouter(grid_chip.grid).plan(requests)
            planner = MotionPlanner(grid_chip.cages, grid_chip.addresser)
            planner.execute(plan)
            return planner.wall_clock()

        few = run(2, seed=1)
        many = run(8, seed=1)
        assert many < 4.0 * few


class TestAssayEndToEnd:
    def test_compiled_protocol_runs_and_measures(self):
        chip = Biochip.small_chip(seed=11)
        protocol = (
            Protocol("assay")
            .trap("cell", (5, 5), mammalian_cell())
            .trap("ref", (5, 25))
            .move("cell", (20, 20))
            .sense("cell", samples=3000)
            .sense("ref", samples=3000)
            .merge("cell", "ref")
            .release("cell")
        )
        program = compile_protocol(protocol, chip.grid)
        result = Session.simulator(chip).run(program)
        assert result.detection_accuracy() == 1.0
        assert result.count() == len(protocol)

    def test_sample_to_measurement(self):
        """Load a drawn sample, sense a few cages, check ground truth."""
        chip = Biochip.small_chip(rows=64, cols=64, seed=5)
        sample = Sample(volume=ul(0.5)).add(
            mammalian_cell(), cells_per_ml(5e4)
        )
        cages = chip.load_sample(sample, max_particles=10)
        assert cages
        detected = [
            chip.sense(c.cage_id, n_samples=3000).detected for c in cages[:5]
        ]
        assert all(detected)


class TestClaimsCrossCheck:
    """System-level checks of the four headline claims together."""

    def test_c1_and_platform_agree(self):
        """The selector's best node can actually drive the platform's
        requirement (chosen drive >= platform drive)."""
        requirements = ApplicationRequirements(
            cell_radius=um(10),
            electrode_pitch=um(20),
            target_speed=um_per_s(50),
        )
        best = TechnologySelector(requirements).best()
        assert best.drive_voltage >= 3.3

    def test_c2_timing_budget_vs_executed_motion(self):
        """The analytic slack ratio matches the executed planner's
        electronics fraction within an order of magnitude."""
        chip = Biochip.small_chip(rows=30, cols=30)
        budget = TimingBudget(
            RowColumnAddresser(chip.grid), cell_speed=chip.cage_speed
        )
        from repro.routing import RoutingRequest

        cage = chip.cages.create((0, 0))
        plan = BatchRouter(chip.grid).plan(
            [RoutingRequest(cage.cage_id, (0, 0), (20, 20))]
        )
        planner = MotionPlanner(chip.cages, chip.addresser, cage_speed=chip.cage_speed)
        planner.execute(plan)
        analytic = 1.0 / budget.slack_ratio()
        executed = planner.electronics_fraction()
        assert executed < 10.0 * analytic

    def test_c3_averaging_fits_in_motion_budget(self):
        """The samples needed for reliable bead detection fit within one
        motion step's sensing budget."""
        from repro.physics.noise import samples_for_target_snr
        from repro.sensing.averaging import averaging_budget

        chip = Biochip.small_chip()
        bead = polystyrene_bead(um(5))
        signal = chip.readout.signal_voltage(bead)
        needed = samples_for_target_snr(signal, chip.readout.noise_floor(), 14.0)
        assert needed is not None
        step_time = chip.grid.pitch / chip.cage_speed
        available = averaging_budget(step_time, 1e-6)
        assert needed < available

    def test_f1_f2_opposite_winners(self):
        sim_e, build_e = electronic_scenario(runs=60, seed=3)
        sim_f, build_f = fluidic_scenario(runs=60, seed=3)
        assert sim_e.median_time < build_e.median_time
        assert build_f.median_time < sim_f.median_time


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        def run(seed):
            chip = Biochip.small_chip(seed=seed)
            protocol = (
                Protocol("det")
                .trap("a", (5, 5), mammalian_cell())
                .sense("a", samples=500)
                .release("a")
            )
            return Session.simulator(chip).run(protocol).readings("a")

        assert run(9) == run(9)
        assert run(9) != run(10)
