"""Unit tests for masks, DRC, device stack, processes and cost models."""

import pytest

from repro.fluidics import Microchamber
from repro.packaging import (
    CmosDie,
    DesignRules,
    DeviceStack,
    FluidicLayout,
    GlassLid,
    PrototypeIteration,
    Rect,
    chamber_layout,
    check_port_enclosure,
    cmos_mpw_iteration,
    cost_ratio,
    dry_film_iteration,
    dry_film_process,
    full_mask_set_iteration,
    glass_etch_process,
    paper_device_stack,
    pdms_process,
    run_drc,
    turnaround_ratio,
)
from repro.physics.constants import days, mm, um
from repro.technology import PAPER_NODE


class TestRect:
    def test_properties(self):
        rect = Rect(0.0, 0.0, 2.0, 1.0)
        assert rect.width == 2.0
        assert rect.height == 1.0
        assert rect.area == 2.0
        assert rect.min_feature == 1.0

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Rect(0.0, 0.0, 0.0, 1.0)

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert not a.intersects(Rect(2, 0, 3, 1))  # touching edge

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(1, 1, 9, 9))
        assert not outer.contains(Rect(5, 5, 11, 9))

    def test_gap_to(self):
        a = Rect(0, 0, 1, 1)
        assert a.gap_to(Rect(3, 0, 4, 1)) == pytest.approx(2.0)
        assert a.gap_to(Rect(0.5, 0.5, 2, 2)) == 0.0

    def test_expanded(self):
        assert Rect(1, 1, 2, 2).expanded(0.5) == Rect(0.5, 0.5, 2.5, 2.5)


class TestLayoutAndDrc:
    def test_chamber_layout_structure(self):
        chamber = Microchamber(mm(7), mm(7), um(100))
        layout = chamber_layout(mm(10), mm(10), chamber)
        assert layout.layer_count == 2
        assert layout.layer("resist-walls").count == 4
        assert layout.layer("lid-ports").count == 2

    def test_chamber_must_fit_chip(self):
        chamber = Microchamber(mm(12), mm(12), um(100))
        with pytest.raises(ValueError):
            chamber_layout(mm(10), mm(10), chamber)

    def test_generated_layout_is_drc_clean(self):
        chamber = Microchamber(mm(7), mm(7), um(100))
        layout = chamber_layout(mm(10), mm(10), chamber)
        rules = DesignRules(substrate=Rect(0, 0, mm(10), mm(10)))
        report = run_drc(layout, rules)
        assert report.clean, report.summary()

    def test_min_feature_violation_detected(self):
        layout = FluidicLayout("bad")
        layout.layer("walls").add_rect(0, 0, um(50), mm(1))  # 50 um wall
        report = run_drc(layout, DesignRules(min_feature=um(100)))
        assert report.count("min-feature") == 1

    def test_overlap_detected(self):
        layout = FluidicLayout("bad")
        walls = layout.layer("walls")
        walls.add_rect(0, 0, mm(1), mm(1))
        walls.add_rect(mm(0.5), mm(0.5), mm(2), mm(2))
        report = run_drc(layout, DesignRules())
        assert report.count("overlap") == 1

    def test_min_gap_detected(self):
        layout = FluidicLayout("bad")
        walls = layout.layer("walls")
        walls.add_rect(0, 0, mm(1), mm(1))
        walls.add_rect(mm(1) + um(20), 0, mm(2), mm(1))  # 20 um gap
        report = run_drc(layout, DesignRules(min_gap=um(100)))
        assert report.count("min-gap") == 1

    def test_substrate_violation_detected(self):
        layout = FluidicLayout("bad")
        layout.layer("walls").add_rect(-mm(1), 0, mm(1), mm(1))
        rules = DesignRules(substrate=Rect(0, 0, mm(10), mm(10)))
        report = run_drc(layout, rules)
        assert report.count("substrate") == 1

    def test_port_enclosure(self):
        chamber = Microchamber(mm(7), mm(7), um(100))
        layout = chamber_layout(mm(10), mm(10), chamber, port_diameter=mm(1))
        cavity = Rect(mm(1.5), mm(1.5), mm(8.5), mm(8.5))
        report = check_port_enclosure(layout, cavity, DesignRules())
        assert report.clean

    def test_summary_text(self):
        layout = FluidicLayout("bad")
        layout.layer("walls").add_rect(0, 0, um(50), mm(1))
        report = run_drc(layout, DesignRules())
        assert "min-feature" in report.summary()


class TestDeviceStack:
    def test_paper_stack_is_valid(self):
        stack = paper_device_stack()
        assert stack.is_valid(), stack.validate()

    def test_paper_stack_volume_near_4ul(self):
        """Fig. 3 chamber holds ~4 ul -- the paper's working drop."""
        chamber = paper_device_stack().chamber()
        assert chamber.volume_ul == pytest.approx(4.05, rel=0.05)

    def test_cavity_covers_array(self):
        stack = paper_device_stack()
        assert stack.cavity_rect().contains(stack.die.array_rect)

    def test_pad_intrusion_detected(self):
        die = CmosDie(
            width=10e-3, depth=10e-3, array_width=8e-3, array_depth=8e-3,
            pad_clearance=1.5e-3,
        )
        stack = DeviceStack(die=die, lid=GlassLid(9e-3, 9e-3), chamber_margin=0.7e-3)
        problems = stack.validate()
        assert any("pad" in p for p in problems)

    def test_small_lid_detected(self):
        stack = paper_device_stack()
        bad = DeviceStack(
            die=stack.die, lid=GlassLid(3e-3, 3e-3), wall_height=stack.wall_height
        )
        assert any("lid" in p for p in bad.validate())

    def test_array_must_fit_die(self):
        with pytest.raises(ValueError):
            CmosDie(width=8e-3, depth=8e-3, array_width=9e-3, array_depth=8e-3)

    def test_ito_drop_small(self):
        assert paper_device_stack().counter_electrode_drop() < 0.1


class TestProcesses:
    def test_dry_film_turnaround_two_three_days(self):
        """The paper: 'two-three days from design to device'."""
        process = dry_film_process()
        assert days(1.5) < process.turnaround() < days(3.5)

    def test_dry_film_mask_few_euros(self):
        """The paper: masks cost 'few euros'."""
        process = dry_film_process(mask_cost=5.0)
        expose = [s for s in process.steps if "expose" in s.name]
        assert expose[0].consumable_cost <= 10.0

    def test_dry_film_setup_tens_of_thousands(self):
        """The paper: set-up 'tens of thousands euros'."""
        assert 10_000 <= dry_film_process().setup_cost <= 100_000

    def test_two_layer_process_longer(self):
        assert (
            dry_film_process(layers=2).processing_time()
            > dry_film_process(layers=1).processing_time()
        )

    def test_yield_accounting(self):
        process = dry_film_process()
        assert 0.0 < process.batch_yield() < 1.0
        assert process.expected_cost_per_good_batch() > process.consumable_cost()

    def test_comparator_processes_slower_or_pricier(self):
        dry = dry_film_process()
        for other in (pdms_process(), glass_etch_process()):
            assert (
                other.setup_cost > dry.setup_cost
                or other.consumable_cost() > dry.consumable_cost()
            )

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            dry_film_process(layers=3)


class TestCostModel:
    def test_claim_c5_cost_gap(self):
        """CMOS prototype iterations cost >100x a dry-film iteration."""
        fluidic = dry_film_iteration()
        electronic = cmos_mpw_iteration(PAPER_NODE)
        assert cost_ratio(fluidic, electronic) > 100.0

    def test_claim_c5_turnaround_gap(self):
        """CMOS turnaround is months vs 2-3 days: ratio > 20x."""
        fluidic = dry_film_iteration()
        electronic = cmos_mpw_iteration(PAPER_NODE)
        assert turnaround_ratio(fluidic, electronic) > 20.0

    def test_full_mask_set_pricier_than_mpw(self):
        assert (
            full_mask_set_iteration(PAPER_NODE).cost
            > cmos_mpw_iteration(PAPER_NODE).cost
        )

    def test_iteration_totals(self):
        iteration = PrototypeIteration("x", cost=10.0, turnaround=100.0, setup_cost=5.0)
        assert iteration.total_cost(3) == pytest.approx(35.0)
        assert iteration.total_cost(3, include_setup=False) == pytest.approx(30.0)
        assert iteration.total_time(3) == pytest.approx(300.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            PrototypeIteration("x", cost=-1.0, turnaround=100.0)
