"""Unit + scenario tests for the design-flow simulation (F1/F2)."""

import numpy as np
import pytest

from repro.designflow import (
    BuildTestFlow,
    DesignProblem,
    ModelFidelity,
    SimulateFirstFlow,
    compare_flows,
    crossover_sweep,
    electronic_fidelity,
    electronic_scenario,
    fluidic_fidelity,
    fluidic_scenario,
    parameter_sweep_fidelities,
    run_flow_monte_carlo,
)
from repro.packaging import PrototypeIteration, cmos_mpw_iteration, dry_film_iteration
from repro.technology import PAPER_NODE


class TestModelFidelity:
    def test_perfect_model_predicts_sign(self):
        fidelity = ModelFidelity(sigma=0.0)
        rng = np.random.default_rng(0)
        assert fidelity.predict(0.5, rng) == pytest.approx(0.5)

    def test_false_pass_probability_grows_with_sigma(self):
        poor = ModelFidelity(sigma=0.5).false_pass_probability(-0.2)
        good = ModelFidelity(sigma=0.05).false_pass_probability(-0.2)
        assert poor > good

    def test_false_pass_zero_sigma(self):
        assert ModelFidelity(sigma=0.0).false_pass_probability(-0.1) == 0.0
        assert ModelFidelity(sigma=0.0).false_pass_probability(0.1) == 1.0

    def test_domain_fidelities_ordered(self):
        """Fluidic models are far less trustworthy than electronic."""
        assert fluidic_fidelity().sigma > 5.0 * electronic_fidelity().sigma

    def test_parameter_sweep(self):
        fids = parameter_sweep_fidelities([0.1, 0.2, 0.3])
        assert [f.sigma for f in fids] == [0.1, 0.2, 0.3]

    def test_validates(self):
        with pytest.raises(ValueError):
            ModelFidelity(sigma=-0.1)


class TestDesignProblem:
    def test_validates_gap(self):
        with pytest.raises(ValueError):
            DesignProblem(initial_gap=0.0)

    def test_validates_improvements(self):
        with pytest.raises(ValueError):
            DesignProblem(blind_improvement=0.5, informed_improvement=0.1)


class TestFlows:
    def fab(self, cost=500.0, turnaround_days=2.5):
        return PrototypeIteration("proto", cost, turnaround_days * 86400.0)

    def test_simulate_first_terminates_and_succeeds(self):
        flow = SimulateFirstFlow(DesignProblem(), electronic_fidelity(), self.fab())
        outcome = flow.run(np.random.default_rng(0))
        assert outcome.met_spec
        assert outcome.fabrications >= 1
        assert outcome.simulations >= 1

    def test_build_test_terminates_and_succeeds(self):
        flow = BuildTestFlow(DesignProblem(), fluidic_fidelity(), self.fab())
        outcome = flow.run(np.random.default_rng(0))
        assert outcome.met_spec
        assert outcome.fabrications >= 1

    def test_outcomes_accumulate_cost_and_time(self):
        flow = BuildTestFlow(DesignProblem(), fluidic_fidelity(), self.fab())
        outcome = flow.run(np.random.default_rng(1))
        assert outcome.elapsed > 0.0
        assert outcome.cost > 0.0

    def test_accurate_model_means_one_fab(self):
        """With a near-perfect simulator the simulate-first flow tapes
        out once -- Fig. 1's promise of 'avoiding lengthy iterations'."""
        flow = SimulateFirstFlow(
            DesignProblem(), ModelFidelity(sigma=0.01), self.fab()
        )
        outcomes = run_flow_monte_carlo(flow, runs=40, seed=0)
        mean_fabs = np.mean([o.fabrications for o in outcomes])
        assert mean_fabs < 1.5

    def test_poor_model_forces_respins(self):
        flow = SimulateFirstFlow(
            DesignProblem(), ModelFidelity(sigma=0.6), self.fab()
        )
        outcomes = run_flow_monte_carlo(flow, runs=40, seed=0)
        mean_fabs = np.mean([o.fabrications for o in outcomes])
        assert mean_fabs > 1.5

    def test_deterministic_given_seed(self):
        flow = BuildTestFlow(DesignProblem(), fluidic_fidelity(), self.fab())
        a = flow.run(np.random.default_rng(5))
        b = flow.run(np.random.default_rng(5))
        assert a.elapsed == b.elapsed
        assert a.cost == b.cost


class TestScenarios:
    def test_f1_electronic_simulate_first_wins(self):
        """Fig. 1 regime: accurate models + slow/expensive fab -> the
        classical flow wins on time and cost."""
        sim_stats, build_stats = electronic_scenario(runs=80, seed=0)
        assert sim_stats.median_time < build_stats.median_time
        assert sim_stats.median_cost < build_stats.median_cost
        assert sim_stats.mean_fabrications < build_stats.mean_fabrications

    def test_f2_fluidic_build_test_wins(self):
        """Fig. 2 regime: poor models + 2-3 day cheap fab -> build-and-
        test wins on time and cost. The paper's headline argument."""
        sim_stats, build_stats = fluidic_scenario(runs=80, seed=0)
        assert build_stats.median_time < sim_stats.median_time
        assert build_stats.median_cost < sim_stats.median_cost

    def test_success_rates_high(self):
        for stats in electronic_scenario(runs=40, seed=1) + fluidic_scenario(
            runs=40, seed=1
        ):
            assert stats.success_rate > 0.9

    def test_crossover_sweep_shape(self):
        """build-test wins the high-sigma/fast-fab corner and loses the
        low-sigma/slow-fab corner."""
        points = crossover_sweep(
            sigmas=(0.02, 0.4), turnarounds_days=(2.5, 90.0), runs=40, seed=0
        )
        by_key = {(p.sigma, round(p.turnaround / 86400.0, 1)): p for p in points}
        assert by_key[(0.4, 2.5)].build_test_wins
        assert not by_key[(0.02, 90.0)].build_test_wins

    def test_compare_flows_uses_common_settings(self):
        sim_stats, build_stats = compare_flows(
            DesignProblem(),
            fluidic_fidelity(),
            dry_film_iteration(),
            runs=20,
            seed=2,
        )
        assert sim_stats.runs == build_stats.runs == 20
