"""Unit + property tests for particle motion."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.constants import um, um_per_s
from repro.physics.motion import (
    LangevinStepper,
    brownian_rms_displacement,
    diffusion_coefficient,
    force_for_velocity,
    max_stable_timestep,
    sedimentation_velocity,
    stokes_drag_coefficient,
    terminal_velocity,
    thermal_escape_ratio,
    transit_time,
)


class TestDrag:
    def test_drag_coefficient_10um_cell(self):
        gamma = stokes_drag_coefficient(um(10))
        assert gamma == pytest.approx(6 * math.pi * 0.89e-3 * 1e-5, rel=1e-6)

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            stokes_drag_coefficient(0.0)

    def test_terminal_velocity_round_trip(self):
        force = 1e-12
        v = terminal_velocity(force, um(10))
        assert force_for_velocity(v, um(10)) == pytest.approx(force)

    def test_paper_speed_needs_piconewtons(self):
        """Moving a 10 um cell at 100 um/s takes ~17 pN: within reach of
        the chip's DEP force, which is the consistency the paper relies
        on."""
        force = force_for_velocity(um_per_s(100.0), um(10))
        assert 1e-12 < force < 1e-10

    def test_sedimentation_cell(self):
        """A mammalian cell settles at ~micrometres per second."""
        v = sedimentation_velocity(um(10), 1070.0)
        assert um_per_s(1.0) < v < um_per_s(100.0)

    def test_neutral_density_does_not_settle(self):
        assert sedimentation_velocity(um(10), 997.0) == pytest.approx(0.0, abs=1e-15)


class TestBrownian:
    def test_diffusion_coefficient_magnitude(self):
        """D of a 10 um particle is ~1e-14 m^2/s (Stokes-Einstein)."""
        d = diffusion_coefficient(um(10))
        assert 1e-15 < d < 1e-13

    def test_rms_displacement_sqrt_time(self):
        r1 = brownian_rms_displacement(um(5), 1.0)
        r4 = brownian_rms_displacement(um(5), 4.0)
        assert r4 / r1 == pytest.approx(2.0)

    def test_cells_barely_diffuse_during_motion_step(self):
        """In the ~1 s a cell needs to cross one pitch it diffuses only
        a fraction of a micrometre -- cages dominate Brownian motion."""
        rms = brownian_rms_displacement(um(10), 1.0)
        assert rms < um(0.5)

    def test_thermal_escape_ratio_large_for_typical_trap(self):
        ratio = thermal_escape_ratio(trap_stiffness=1e-7, radius=um(5))
        assert ratio > 100.0


class TestTransit:
    def test_paper_numbers(self):
        """20 um pitch at 10-100 um/s -> 0.2 to 2 seconds per electrode."""
        assert transit_time(um(20), um_per_s(100.0)) == pytest.approx(0.2)
        assert transit_time(um(20), um_per_s(10.0)) == pytest.approx(2.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            transit_time(um(20), 0.0)


class TestLangevinStepper:
    def test_deterministic_drift(self):
        stepper = LangevinStepper(radius=um(5))
        force = 1e-12

        def force_fn(pos):
            out = np.zeros_like(pos)
            out[:, 0] = force
            return out

        positions = np.zeros((1, 3))
        dt = 0.01
        final = stepper.run(positions, force_fn, dt, 100, brownian=False)
        expected = force / stepper.drag_coefficient * dt * 100
        assert final[0, 0] == pytest.approx(expected, rel=1e-9)

    def test_brownian_msd_matches_einstein(self):
        """Mean-square displacement of free diffusion = 2 D t per axis."""
        stepper = LangevinStepper(radius=um(1), rng=np.random.default_rng(42))
        n = 2000
        positions = np.zeros((n, 3))
        dt, steps = 0.01, 50
        final = stepper.run(positions, lambda p: np.zeros_like(p), dt, steps)
        msd = float(np.mean(final[:, 0] ** 2))
        expected = 2.0 * stepper.diffusion * dt * steps
        assert msd == pytest.approx(expected, rel=0.15)

    def test_harmonic_trap_confines(self):
        """A stiff trap holds the particle near the origin at equilibrium
        variance kT/k."""
        k = 1e-6
        stepper = LangevinStepper(radius=um(5), rng=np.random.default_rng(7))
        dt = max_stable_timestep(k, um(5))
        positions = np.zeros((500, 3))
        final = stepper.run(positions, lambda p: -k * p, dt, 400)
        var = float(np.var(final[:, 0]))
        from repro.physics.constants import thermal_energy

        expected = thermal_energy() / k
        assert var == pytest.approx(expected, rel=0.3)

    def test_force_shape_mismatch_raises(self):
        stepper = LangevinStepper(radius=um(5))
        with pytest.raises(ValueError):
            stepper.step(np.zeros((2, 3)), lambda p: np.zeros((3, 2)), 0.01)

    def test_record_trajectory(self):
        stepper = LangevinStepper(radius=um(5))
        traj = stepper.run(
            np.zeros((2, 3)), lambda p: np.zeros_like(p), 0.01, 5, record=True
        )
        assert traj.shape == (6, 2, 3)

    @given(steps=st.integers(1, 30), n=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_zero_force_zero_noise_stays_put(self, steps, n):
        stepper = LangevinStepper(radius=um(5))
        start = np.arange(n * 3, dtype=float).reshape(n, 3) * 1e-6
        final = stepper.run(
            start.copy(), lambda p: np.zeros_like(p), 0.01, steps, brownian=False
        )
        assert np.allclose(final, start)


class TestStability:
    def test_max_stable_timestep_positive(self):
        assert max_stable_timestep(1e-6, um(5)) > 0.0

    def test_rejects_nonpositive_stiffness(self):
        with pytest.raises(ValueError):
            max_stable_timestep(0.0, um(5))
