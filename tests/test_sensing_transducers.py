"""Unit tests for the capacitive and optical transducer models."""

import pytest

from repro.bio import bacterium, mammalian_cell, polystyrene_bead
from repro.physics.constants import af, ff, um
from repro.physics.dielectrics import water_medium
from repro.sensing import CapacitiveSensor, OpticalSensor


def make_capacitive(**kwargs):
    defaults = dict(
        pixel_pitch=um(20), chamber_height=um(100), medium=water_medium()
    )
    defaults.update(kwargs)
    return CapacitiveSensor(**defaults)


class TestCapacitiveSensor:
    def test_baseline_capacitance_femtofarad_class(self):
        """20 um pixel under 100 um of water: ~2.8 fF baseline; the
        particle perturbations below are the sub-fF/attofarad signals
        the ISSCC'04 sensor resolves."""
        sensor = make_capacitive()
        baseline = sensor.baseline_capacitance()
        assert ff(1.0) < baseline < ff(10.0)

    def test_delta_c_negative_for_bead(self):
        """Polystyrene is far less polarisable than water at any
        frequency: capacitance drops when a bead parks over the pixel."""
        sensor = make_capacitive()
        assert sensor.delta_capacitance(polystyrene_bead()) < 0.0

    def test_delta_c_magnitude_attofarad_class(self):
        sensor = make_capacitive()
        delta = abs(sensor.delta_capacitance(mammalian_cell()))
        assert af(10.0) < delta < ff(2.0)

    def test_bigger_particle_bigger_signal(self):
        sensor = make_capacitive()
        small = abs(sensor.delta_capacitance(bacterium()))
        big = abs(sensor.delta_capacitance(mammalian_cell()))
        assert big > 10.0 * small

    def test_levitation_derates_signal(self):
        sensor = make_capacitive()
        low = abs(sensor.delta_capacitance(polystyrene_bead(), height=um(5)))
        high = abs(sensor.delta_capacitance(polystyrene_bead(), height=um(40)))
        assert high < low

    def test_contrast_dimensionless(self):
        sensor = make_capacitive()
        contrast = sensor.contrast(mammalian_cell())
        assert 0.0 < contrast < 1.0

    def test_signal_charge_positive(self):
        sensor = make_capacitive()
        assert sensor.signal_charge(mammalian_cell()) > 0.0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            make_capacitive(pixel_pitch=0.0)


class TestOpticalSensor:
    def make(self, **kwargs):
        defaults = dict(pixel_pitch=um(20))
        defaults.update(kwargs)
        return OpticalSensor(**defaults)

    def test_photocurrent_drops_with_shading(self):
        sensor = self.make()
        assert sensor.photocurrent(0.5) < sensor.photocurrent(0.0)

    def test_shading_bounds(self):
        sensor = self.make()
        with pytest.raises(ValueError):
            sensor.photocurrent(1.5)

    def test_cell_shadows_most_of_pixel(self):
        """A 20 um cell over a 20 um pixel shades a large fraction."""
        sensor = self.make()
        shading = sensor.shading_fraction(mammalian_cell())
        assert 0.3 < shading <= 1.0

    def test_bacterium_shadows_little(self):
        sensor = self.make()
        assert sensor.shading_fraction(bacterium()) < 0.01

    def test_single_sample_snr_ordering(self):
        """Bigger particles are easier to see optically."""
        sensor = self.make()
        assert sensor.single_sample_snr(mammalian_cell()) > sensor.single_sample_snr(
            bacterium()
        )

    def test_cell_detectable_in_one_sample(self):
        """A mammalian cell gives comfortable single-shot optical SNR."""
        sensor = self.make()
        assert sensor.single_sample_snr(mammalian_cell()) > 10.0

    def test_signal_electrons_positive(self):
        sensor = self.make()
        assert sensor.signal_electrons(polystyrene_bead()) > 0.0

    def test_integration_time_scales_signal(self):
        short = self.make(integration_time=1e-3)
        long = self.make(integration_time=4e-3)
        ratio = long.signal_electrons(mammalian_cell()) / short.signal_electrons(
            mammalian_cell()
        )
        assert ratio == pytest.approx(4.0)

    def test_shot_noise_sqrt_of_background(self):
        sensor = self.make()
        assert sensor.shot_noise_electrons() == pytest.approx(
            sensor.background_electrons() ** 0.5
        )

    def test_rejects_bad_fill_factor(self):
        with pytest.raises(ValueError):
            self.make(fill_factor=0.0)
