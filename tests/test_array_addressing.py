"""Unit tests for addressing timing and pixel design (claim C2 pieces)."""

import pytest

from repro.array import (
    ElectrodeGrid,
    PixelDesign,
    RowColumnAddresser,
    TimingBudget,
    cage_frame,
    paper_grid,
)
from repro.physics.constants import um, um_per_s
from repro.technology import PAPER_NODE, get_node


class TestRowColumnAddresser:
    def make(self, rows=320, cols=320):
        return RowColumnAddresser(ElectrodeGrid(rows, cols, um(20)))

    def test_frame_program_time_sub_millisecond(self):
        """Programming all 102,400 pixels takes well under 1 ms at
        10 MHz with a 32-bit bus -- the electronics is 'fast'."""
        addresser = self.make()
        assert addresser.frame_program_time() < 1e-3

    def test_frame_scan_slower_than_program(self):
        addresser = self.make()
        assert addresser.frame_scan_time() > addresser.frame_program_time()

    def test_incremental_cheaper_than_full(self):
        grid = ElectrodeGrid(64, 64, um(20))
        addresser = RowColumnAddresser(grid)
        old = cage_frame(grid, [(10, 10)])
        new = cage_frame(grid, [(11, 10)])
        assert addresser.incremental_program_time(old, new) < addresser.frame_program_time()

    def test_incremental_counts_dirty_rows(self):
        grid = ElectrodeGrid(64, 64, um(20))
        addresser = RowColumnAddresser(grid)
        old = cage_frame(grid, [(10, 10)])
        new = cage_frame(grid, [(11, 10)])  # rows 10 and 11 change
        assert addresser.incremental_program_time(old, new) == pytest.approx(
            2 * addresser.row_write_time()
        )

    def test_identical_frames_cost_nothing(self):
        grid = ElectrodeGrid(32, 32, um(20))
        addresser = RowColumnAddresser(grid)
        frame = cage_frame(grid, [(5, 5)])
        assert addresser.incremental_program_time(frame, frame.copy()) == 0.0

    def test_region_scan_time_linear(self):
        addresser = self.make()
        assert addresser.region_scan_time(10) == pytest.approx(
            10 * addresser.row_scan_time()
        )

    def test_region_scan_bounds(self):
        with pytest.raises(ValueError):
            self.make().region_scan_time(321)

    def test_scans_within_budget(self):
        addresser = self.make()
        one_second = addresser.scans_within(1.0)
        assert one_second == int(1.0 / addresser.frame_scan_time())

    def test_max_frame_rate_positive(self):
        assert self.make().max_frame_rate() > 10.0

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            RowColumnAddresser(paper_grid(), clock_frequency=0.0)

    def test_type_check_incremental(self):
        addresser = self.make()
        with pytest.raises(TypeError):
            addresser.incremental_program_time("x", "y")


class TestTimingBudget:
    def test_paper_claim_plenty_of_time(self):
        """Claim C2: electronics at least 100x faster than mass transfer
        even at the fastest cell speed."""
        budget = TimingBudget(
            RowColumnAddresser(paper_grid()), cell_speed=um_per_s(100.0)
        )
        assert budget.slack_ratio() > 30.0
        # and at the paper's slow end the ratio is in the hundreds
        slow = TimingBudget(RowColumnAddresser(paper_grid()), um_per_s(10.0))
        assert slow.slack_ratio() > 300.0

    def test_slow_cells_widen_slack(self):
        addresser = RowColumnAddresser(paper_grid())
        slow = TimingBudget(addresser, um_per_s(10.0))
        fast = TimingBudget(addresser, um_per_s(100.0))
        assert slow.slack_ratio() == pytest.approx(10.0 * fast.slack_ratio())

    def test_spare_scans_are_many(self):
        """Hundreds of full-array scans fit in one motion step: the
        averaging headroom of claim C3."""
        budget = TimingBudget(
            RowColumnAddresser(paper_grid()), cell_speed=um_per_s(50.0)
        )
        assert budget.spare_scans_per_step() > 50

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            TimingBudget(RowColumnAddresser(paper_grid()), 0.0)


class TestPixelDesign:
    def test_pixel_fits_under_20um_on_035(self):
        """The paper's 0.35 um node hosts memory + switches + sensor
        under a 20 um electrode (12 um floor allows it)."""
        pixel = PixelDesign(node=PAPER_NODE)
        assert pixel.fits(um(20.0))

    def test_pixel_does_not_fit_on_ancient_node(self):
        pixel = PixelDesign(node=get_node("2.0um"))
        assert not pixel.fits(um(20.0))

    def test_sensorless_pixel_smaller(self):
        with_sensor = PixelDesign(node=PAPER_NODE, sensor="capacitive")
        without = PixelDesign(node=PAPER_NODE, sensor="none")
        assert without.circuit_area() < with_sensor.circuit_area()

    def test_unknown_sensor_rejected(self):
        with pytest.raises(ValueError):
            PixelDesign(node=PAPER_NODE, sensor="quantum")

    def test_fill_factor_bounds(self):
        pixel = PixelDesign(node=PAPER_NODE)
        assert 0.0 <= pixel.fill_factor(um(20.0)) <= 1.0

    def test_min_pitch_never_below_node_floor(self):
        pixel = PixelDesign(node=get_node("90nm"), sensor="none", memory_bits=1)
        assert pixel.min_pitch() >= get_node("90nm").min_electrode_pitch

    def test_static_power_grows_on_newer_nodes(self):
        old = PixelDesign(node=PAPER_NODE)
        new = PixelDesign(node=get_node("90nm"))
        # per-cell leakage class is higher on deep submicron
        assert new.static_power() > 0.0
        assert old.static_power() >= 0.0
