"""Unit tests for Protocol.fingerprint(): the structural protocol hash."""

from repro import Protocol
from repro.bio import mammalian_cell, polystyrene_bead


def pair_protocol(name, cell, bead, samples=2000):
    return (
        Protocol(name)
        .trap(cell, (10, 10))
        .trap(bead, (10, 30))
        .move(cell, (20, 20))
        .merge(cell, bead)
        .sense(cell, samples=samples)
        .release(cell)
    )


class TestFingerprintInvariance:
    def test_handle_names_do_not_matter(self):
        a = pair_protocol("a", "cell", "bead")
        b = pair_protocol("b", "x1", "x2")
        assert a.fingerprint() == b.fingerprint()

    def test_protocol_name_does_not_matter(self):
        a = pair_protocol("production", "c", "b")
        b = pair_protocol("staging", "c", "b")
        assert a.fingerprint() == b.fingerprint()

    def test_stable_across_calls(self):
        protocol = pair_protocol("p", "c", "b")
        assert protocol.fingerprint() == protocol.fingerprint()

    def test_handle_references_canonicalised_in_containers(self):
        # move_many carries handles inside nested tuples; renaming the
        # handles consistently must not change the fingerprint
        a = (
            Protocol("a")
            .trap("u", (2, 2)).trap("v", (2, 8))
            .move_many({"u": (2, 20), "v": (2, 26)})
        )
        b = (
            Protocol("b")
            .trap("left", (2, 2)).trap("right", (2, 8))
            .move_many({"left": (2, 20), "right": (2, 26)})
        )
        assert a.fingerprint() == b.fingerprint()


class TestFingerprintSensitivity:
    def test_order_sensitive(self):
        # the same multiset of commands in a different order
        a = Protocol("a").trap("h", (2, 2)).move("h", (2, 10)).move("h", (2, 20))
        b = Protocol("b").trap("h", (2, 2)).move("h", (2, 20)).move("h", (2, 10))
        assert a.fingerprint() != b.fingerprint()

    def test_payload_sensitive(self):
        base = pair_protocol("p", "c", "b", samples=2000)
        deeper = pair_protocol("p", "c", "b", samples=4000)
        assert base.fingerprint() != deeper.fingerprint()

    def test_site_sensitive(self):
        a = Protocol("p").trap("h", (2, 2)).release("h")
        b = Protocol("p").trap("h", (2, 3)).release("h")
        assert a.fingerprint() != b.fingerprint()

    def test_particle_sensitive(self):
        a = Protocol("p").trap("h", (2, 2), mammalian_cell()).release("h")
        b = Protocol("p").trap("h", (2, 2), polystyrene_bead()).release("h")
        c = Protocol("p").trap("h", (2, 2)).release("h")
        assert len({p.fingerprint() for p in (a, b, c)}) == 3

    def test_store_as_is_payload_not_handle(self):
        # store_as is a measurement key: it must be hashed verbatim even
        # when its value collides with a handle name, so two protocols
        # with different keys never share a cached program
        a = Protocol("p").trap("k", (2, 2)).sense("k", store_as="k").release("k")
        b = Protocol("p").trap("m", (2, 2)).sense("m", store_as="m").release("m")
        assert a.fingerprint() != b.fingerprint()
        # without store_as the same renaming IS insensitive
        c = Protocol("p").trap("k", (2, 2)).sense("k").release("k")
        d = Protocol("p").trap("m", (2, 2)).sense("m").release("m")
        assert c.fingerprint() == d.fingerprint()

    def test_non_dataclass_command_hashes_verbatim(self):
        # Protocol.add accepts arbitrary command objects; fingerprint
        # must hash them (by repr), not crash on dataclasses.fields
        class PlainCmd:
            def __repr__(self):
                return "PlainCmd(wash=3)"

        protocol = Protocol("p").trap("h", (2, 2)).add(PlainCmd()).release("h")
        assert protocol.fingerprint() == protocol.fingerprint()
        without = Protocol("p").trap("h", (2, 2)).release("h")
        assert protocol.fingerprint() != without.fingerprint()

    def test_literal_alias_lookalike_does_not_collide(self):
        # an (invalid) protocol referencing the literal handle "h0" must
        # not fingerprint like a valid one whose real handle was
        # canonicalised -- aliases are unspellable, so a cached program
        # can never stand in for a protocol that would fail validation
        valid = Protocol("v").trap("a", (2, 2)).sense("a").release("a")
        invalid = Protocol("i").trap("a", (2, 2)).sense("h0").release("a")
        assert valid.fingerprint() != invalid.fingerprint()

    def test_distinct_handle_structure_distinct_hash(self):
        # two handles doing X is not the same as one handle doing X twice
        a = (
            Protocol("p")
            .trap("u", (2, 2)).trap("v", (2, 8))
            .release("u").release("v")
        )
        b = (
            Protocol("p")
            .trap("u", (2, 2)).trap("v", (2, 8))
            .release("v").release("u")
        )
        assert a.fingerprint() != b.fingerprint()
