"""Unit tests for the thermal bounds."""

import pytest

from repro.physics.thermal import (
    ChipThermalModel,
    electrothermal_velocity_scale,
    joule_heating_density,
    joule_power,
    temperature_rise_scale,
)


class TestJouleHeating:
    def test_density(self):
        assert joule_heating_density(0.02, 1e5) == pytest.approx(0.02 * 1e10)

    def test_rejects_negative_conductivity(self):
        with pytest.raises(ValueError):
            joule_heating_density(-0.1, 1e5)

    def test_chamber_power_small_in_dep_buffer(self):
        """3.3 V across 100 um in a 4 ul drop of 0.02 S/m buffer: ~90 mW
        class upper bound (uniform-field overestimate)."""
        power = joule_power(0.02, 3.3, 4e-9, 100e-6)
        assert 1e-3 < power < 1.0


class TestTemperatureRise:
    def test_paper_operating_point_negligible(self):
        """0.02 S/m at 3.3 V: ~45 mK rise -- actuation does not cook
        the cells."""
        dt = temperature_rise_scale(0.02, 3.3)
        assert dt < 0.1

    def test_saline_at_high_voltage_is_kelvin_scale(self):
        dt = temperature_rise_scale(1.6, 10.0)
        assert 1.0 < dt < 100.0

    def test_quadratic_in_voltage(self):
        assert temperature_rise_scale(0.02, 6.6) == pytest.approx(
            4.0 * temperature_rise_scale(0.02, 3.3)
        )


class TestElectrothermalFlow:
    def test_negligible_at_paper_operating_point(self):
        """ET slip velocity far below the DEP manipulation speed."""
        u = electrothermal_velocity_scale(0.02, 3.3, 1e6, 20e-6)
        assert u < 10e-6  # below 10 um/s

    def test_grows_steeply_with_voltage(self):
        low = electrothermal_velocity_scale(0.1, 2.0, 1e5, 20e-6)
        high = electrothermal_velocity_scale(0.1, 8.0, 1e5, 20e-6)
        assert high > 50.0 * low  # ~V^4

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            electrothermal_velocity_scale(0.1, 2.0, 1e5, 0.0)


class TestChipThermalModel:
    def test_temperature_rise(self):
        model = ChipThermalModel(electronics_power=0.1, thermal_resistance=40.0)
        assert model.temperature_rise() == pytest.approx(4.0)

    def test_biocompatible_at_modest_power(self):
        model = ChipThermalModel(electronics_power=0.1, thermal_resistance=40.0)
        assert model.is_biocompatible()

    def test_not_biocompatible_at_high_power(self):
        model = ChipThermalModel(electronics_power=1.0, thermal_resistance=40.0)
        assert not model.is_biocompatible()

    def test_max_electronics_power_budget(self):
        model = ChipThermalModel(
            electronics_power=0.0, buffer_power=0.05, thermal_resistance=40.0
        )
        budget = model.max_electronics_power()
        assert budget == pytest.approx(10.0 / 40.0 - 0.05)

    def test_chip_temperature_absolute(self):
        model = ChipThermalModel(electronics_power=0.1, thermal_resistance=40.0)
        assert model.chip_temperature() == pytest.approx(298.15 + 4.0)
