"""Unit tests for the drive electronics and array power budget."""

import math

import pytest

from repro.array import paper_grid
from repro.array.drive import ArrayDrivePower, PhaseGenerator
from repro.physics.thermal import joule_power


class TestPhaseGenerator:
    def make(self, **kwargs):
        defaults = dict(frequency=1e6, amplitude=3.3)
        defaults.update(kwargs)
        return PhaseGenerator(**defaults)

    def test_period(self):
        assert self.make().period == pytest.approx(1e-6)

    def test_counter_phase_is_inverted(self):
        gen = self.make()
        t = 0.1e-6
        assert gen.value(t, 0) == pytest.approx(-gen.value(t, 1), abs=1e-12)

    def test_amplitude_bound(self):
        gen = self.make()
        values = [gen.value(i * 1e-8) for i in range(200)]
        assert max(values) <= 3.3 + 1e-12
        assert min(values) >= -3.3 - 1e-12

    def test_slew_rate(self):
        gen = self.make()
        assert gen.max_slew_rate() == pytest.approx(2 * math.pi * 1e6 * 3.3)

    def test_slew_rate_modest_for_dep_drive(self):
        """~20 V/us: trivially achievable on a mature node -- more of
        the paper's 'older technology suffices' theme."""
        assert self.make().max_slew_rate() < 100e6

    def test_rms(self):
        assert self.make().rms() == pytest.approx(3.3 / math.sqrt(2))

    def test_phase_index_validated(self):
        with pytest.raises(ValueError):
            self.make().value(0.0, 5)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            PhaseGenerator(frequency=0.0, amplitude=3.3)
        with pytest.raises(ValueError):
            PhaseGenerator(frequency=1e6, amplitude=3.3, n_phases=1)


class TestArrayDrivePower:
    def make(self, **kwargs):
        defaults = dict(
            grid=paper_grid(),
            generator=PhaseGenerator(frequency=1e6, amplitude=3.3),
        )
        defaults.update(kwargs)
        return ArrayDrivePower(**defaults)

    def test_total_power_milliwatt_class(self):
        """Driving the full >100k array costs milliwatts-to-tens-of-mW:
        biochips do not need power-hungry electronics."""
        power = self.make().total_power()
        assert 1e-3 < power < 0.5

    def test_ac_power_dominates_at_mhz(self):
        budget = self.make()
        assert budget.ac_drive_power() > budget.reprogram_power()

    def test_power_scales_with_frequency(self):
        slow = self.make(generator=PhaseGenerator(frequency=1e5, amplitude=3.3))
        fast = self.make(generator=PhaseGenerator(frequency=1e6, amplitude=3.3))
        assert fast.ac_drive_power() == pytest.approx(10.0 * slow.ac_drive_power())

    def test_power_scales_with_amplitude_squared(self):
        low = self.make(generator=PhaseGenerator(frequency=1e6, amplitude=1.65))
        high = self.make(generator=PhaseGenerator(frequency=1e6, amplitude=3.3))
        assert high.ac_drive_power() == pytest.approx(4.0 * low.ac_drive_power())

    def test_reprogram_power_scales_with_rate(self):
        slow = self.make(reprogram_rate=1.0)
        fast = self.make(reprogram_rate=100.0)
        assert fast.reprogram_power() == pytest.approx(100.0 * slow.reprogram_power())

    def test_whole_chip_stays_biocompatible(self):
        """Drive power + buffer Joule heating through the package
        thermal resistance keeps the chip within the safe rise."""
        budget = self.make()
        buffer_power = joule_power(0.02, 3.3, 4e-9, 100e-6)
        model = budget.thermal_model(buffer_power=buffer_power)
        assert model.is_biocompatible()

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            self.make(electrode_capacitance=0.0)
        with pytest.raises(ValueError):
            self.make(switching_fraction=1.5)
