"""Unit + property tests for the electrode grid and phase patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array import (
    ArrayFrame,
    ElectrodeGrid,
    Phase,
    cage_frame,
    paper_grid,
    uniform_frame,
)
from repro.physics.constants import um


class TestElectrodeGrid:
    def test_paper_grid_has_over_100k_electrodes(self):
        """The paper: 'an array of more than 100,000 electrodes'."""
        grid = paper_grid()
        assert grid.electrode_count > 100_000
        assert grid.electrode_count == 320 * 320

    def test_paper_grid_is_8mm_square(self):
        grid = paper_grid()
        assert grid.width == pytest.approx(6.4e-3)
        assert grid.height == pytest.approx(6.4e-3)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ElectrodeGrid(0, 10, um(20))
        with pytest.raises(ValueError):
            ElectrodeGrid(10, 10, 0.0)

    def test_center(self):
        grid = ElectrodeGrid(4, 4, um(20))
        x, y = grid.center(0, 0)
        assert x == pytest.approx(um(10))
        assert y == pytest.approx(um(10))

    def test_center_out_of_bounds(self):
        grid = ElectrodeGrid(4, 4, um(20))
        with pytest.raises(IndexError):
            grid.center(4, 0)

    def test_centers_shape(self):
        grid = ElectrodeGrid(3, 5, um(20))
        centers = grid.centers()
        assert centers.shape == (3, 5, 2)
        assert centers[2, 4, 0] == pytest.approx(um(90))  # x of col 4
        assert centers[2, 4, 1] == pytest.approx(um(50))  # y of row 2

    def test_locate_round_trip(self):
        grid = ElectrodeGrid(10, 10, um(20))
        for site in [(0, 0), (3, 7), (9, 9)]:
            x, y = grid.center(*site)
            assert grid.locate(x, y) == site

    def test_locate_outside_raises(self):
        grid = ElectrodeGrid(10, 10, um(20))
        with pytest.raises(ValueError):
            grid.locate(-um(1), um(5))

    def test_neighbors4_corner(self):
        grid = ElectrodeGrid(5, 5, um(20))
        assert set(grid.neighbors4(0, 0)) == {(0, 1), (1, 0)}

    def test_neighbors8_interior(self):
        grid = ElectrodeGrid(5, 5, um(20))
        assert len(grid.neighbors8(2, 2)) == 8

    def test_distances(self):
        grid = ElectrodeGrid(10, 10, um(20))
        assert grid.chebyshev((0, 0), (3, 5)) == 5
        assert grid.manhattan((0, 0), (3, 5)) == 8

    def test_window_clipping(self):
        grid = ElectrodeGrid(10, 10, um(20))
        assert grid.window(0, 0, 2) == (0, 2, 0, 2)
        assert grid.window(9, 9, 2) == (7, 9, 7, 9)

    @given(
        rows=st.integers(1, 40),
        cols=st.integers(1, 40),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_locate_center_round_trip_property(self, rows, cols, data):
        grid = ElectrodeGrid(rows, cols, um(20))
        row = data.draw(st.integers(0, rows - 1))
        col = data.draw(st.integers(0, cols - 1))
        x, y = grid.center(row, col)
        assert grid.locate(x, y) == (row, col)


class TestArrayFrame:
    def test_default_all_ground(self):
        frame = ArrayFrame(ElectrodeGrid(4, 4, um(20)))
        assert np.all(frame.phases == 0)

    def test_set_get_phase(self):
        frame = ArrayFrame(ElectrodeGrid(4, 4, um(20)))
        frame.set_phase(1, 2, Phase.COUNTER)
        assert frame.get_phase(1, 2) is Phase.COUNTER

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ArrayFrame(ElectrodeGrid(4, 4, um(20)), np.zeros((3, 3)))

    def test_rejects_invalid_phase_values(self):
        with pytest.raises(ValueError):
            ArrayFrame(ElectrodeGrid(2, 2, um(20)), np.full((2, 2), 7))

    def test_uniform_frame(self):
        frame = uniform_frame(ElectrodeGrid(3, 3, um(20)))
        assert np.all(frame.phases == Phase.IN_PHASE.value)

    def test_cage_frame_sites(self):
        grid = ElectrodeGrid(8, 8, um(20))
        frame = cage_frame(grid, [(2, 2), (5, 6)])
        assert frame.counter_phase_sites() == [(2, 2), (5, 6)]

    def test_cage_frame_out_of_bounds(self):
        grid = ElectrodeGrid(4, 4, um(20))
        with pytest.raises(IndexError):
            cage_frame(grid, [(5, 0)])

    def test_diff_count(self):
        grid = ElectrodeGrid(6, 6, um(20))
        a = cage_frame(grid, [(2, 2)])
        b = cage_frame(grid, [(2, 3)])
        assert a.diff_count(b) == 2  # old site and new site both change

    def test_dirty_rows(self):
        grid = ElectrodeGrid(6, 6, um(20))
        a = cage_frame(grid, [(2, 2)])
        b = cage_frame(grid, [(3, 2)])
        assert b.dirty_rows(a) == [2, 3]

    def test_diff_different_grids_raises(self):
        a = ArrayFrame(ElectrodeGrid(4, 4, um(20)))
        b = ArrayFrame(ElectrodeGrid(5, 5, um(20)))
        with pytest.raises(ValueError):
            a.diff_count(b)

    def test_copy_is_independent(self):
        frame = uniform_frame(ElectrodeGrid(3, 3, um(20)))
        clone = frame.copy()
        clone.set_phase(0, 0, Phase.GROUND)
        assert frame.get_phase(0, 0) is Phase.IN_PHASE

    def test_to_ascii(self):
        grid = ElectrodeGrid(3, 3, um(20))
        frame = cage_frame(grid, [(1, 1)])
        art = frame.to_ascii()
        assert art.splitlines()[1] == "+-+"

    def test_field_model_window(self):
        """A cage frame's field model reproduces the trap minimum."""
        grid = ElectrodeGrid(12, 12, um(20))
        frame = cage_frame(grid, [(6, 6)])
        model = frame.field_model(3.3, lid_height=um(100), region=(4, 8, 4, 8))
        x, y = grid.center(6, 6)
        xn, yn = grid.center(6, 8)
        z = um(15)
        assert model.e_squared(x, y, z) < model.e_squared(xn, yn, z)

    def test_field_model_patch_count(self):
        grid = ElectrodeGrid(10, 10, um(20))
        frame = cage_frame(grid, [(5, 5)])
        model = frame.field_model(3.3, um(100), region=(3, 7, 3, 7))
        assert len(model.patches) == 25
