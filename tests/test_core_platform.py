"""Unit tests for the Biochip platform façade and protocol execution."""

import pytest

from repro import Biochip, ExecutionError, Protocol, Session
from repro.bio import Sample, cells_per_ml, mammalian_cell, polystyrene_bead
from repro.physics.constants import ul, um


class TestBiochipConstruction:
    def test_paper_chip_scale(self):
        chip = Biochip.paper_chip()
        assert chip.grid.electrode_count > 100_000
        assert chip.cages.max_cage_count() >= 10_000

    def test_small_chip(self):
        chip = Biochip.small_chip(rows=32, cols=32)
        assert chip.grid.electrode_count == 1024

    def test_drive_voltage_capped_by_node(self):
        with pytest.raises(ValueError, match="exceeds node"):
            Biochip.small_chip().__class__(
                grid=Biochip.small_chip().grid, drive_voltage=12.0
            )

    def test_chamber_default_covers_grid(self):
        chip = Biochip.small_chip()
        assert chip.chamber.covers_grid(chip.grid)


class TestBiochipOperations:
    def test_trap_and_release(self):
        chip = Biochip.small_chip()
        cage = chip.trap((5, 5), polystyrene_bead())
        assert chip.cage_count == 1
        chip.release(cage.cage_id)
        assert chip.cage_count == 0

    def test_trap_conflict_raises_execution_error(self):
        chip = Biochip.small_chip()
        chip.trap((5, 5))
        with pytest.raises(ExecutionError):
            chip.trap((5, 6))

    def test_move_routes_around_other_cages(self):
        chip = Biochip.small_chip()
        blocker = chip.trap((10, 10))
        mover = chip.trap((10, 0))
        path = chip.move(mover.cage_id, (10, 20))
        assert chip.cages.cage(mover.cage_id).site == (10, 20)
        for site in path:
            assert max(abs(site[0] - 10), abs(site[1] - 10)) >= 2 or site == (10, 0) or site[1] > 12 or site[1] < 8

    def test_move_accounts_time(self):
        chip = Biochip.small_chip()
        cage = chip.trap((0, 0))
        before = chip.elapsed
        chip.move(cage.cage_id, (0, 10))
        elapsed = chip.elapsed - before
        # 10 steps at 20 um / 50 um/s = 4 s of physics, plus tiny electronics
        assert elapsed == pytest.approx(4.0, rel=0.05)

    def test_merge(self):
        chip = Biochip.small_chip()
        a = chip.trap((10, 10), "A")
        b = chip.trap((10, 20), "B")
        merged = chip.merge(a.cage_id, b.cage_id)
        assert merged.payload == ["A", "B"]
        assert chip.cage_count == 1

    def test_merged_cage_senses_combined_contrast(self):
        # regression: a merged (list-payload) cage used to sense only
        # payload[0] -- the sensed signal must be the summed contrast
        # of every particle in the cage
        chip = Biochip.small_chip(seed=2)
        a = chip.trap((5, 5), mammalian_cell())
        b = chip.trap((5, 9), polystyrene_bead())
        single_cell, __ = chip._cage_signal(a)
        single_bead, __ = chip._cage_signal(b)
        merged = chip.merge(a.cage_id, b.cage_id)
        combined, expected = chip._cage_signal(merged)
        assert expected
        assert combined == pytest.approx(single_cell + single_bead)
        result = chip.sense(merged.cage_id, n_samples=2000)
        assert result.expected and result.detected

    def test_empty_and_empty_list_payloads_sense_nothing(self):
        chip = Biochip.small_chip()
        empty = chip.trap((20, 20))
        assert chip._cage_signal(empty) == (0.0, False)
        empty.payload = []  # a merged cage whose contents were consumed
        assert chip._cage_signal(empty) == (0.0, False)

    def test_sense_detects_cell(self):
        chip = Biochip.small_chip()
        cage = chip.trap((5, 5), mammalian_cell())
        result = chip.sense(cage.cage_id, n_samples=2000)
        assert result.detected
        assert result.expected

    def test_sense_empty_cage_mostly_silent(self):
        chip = Biochip.small_chip(seed=3)
        cage = chip.trap((5, 5))
        result = chip.sense(cage.cage_id, n_samples=2000)
        assert not result.expected
        assert not result.detected

    def test_sense_time_scales_with_samples(self):
        chip = Biochip.small_chip()
        cage = chip.trap((5, 5), mammalian_cell())
        short = chip.sense(cage.cage_id, n_samples=100).duration
        long = chip.sense(cage.cage_id, n_samples=1000).duration
        assert long == pytest.approx(10.0 * short)

    def test_incubate_advances_clock(self):
        chip = Biochip.small_chip()
        before = chip.elapsed
        chip.incubate(60.0)
        assert chip.elapsed - before == pytest.approx(60.0)

    def test_verify_speed_for_bead(self):
        chip = Biochip.small_chip()
        assert chip.verify_speed(polystyrene_bead(um(5)))

    def test_history_grows(self):
        chip = Biochip.small_chip()
        cage = chip.trap((5, 5))
        chip.move(cage.cage_id, (10, 10))
        kinds = [kind for __, kind, __ in chip.history]
        assert kinds == ["trap", "move"]


class TestLoadSample:
    def sample(self, per_ml=2e4):
        return Sample(volume=ul(1.0)).add(polystyrene_bead(), cells_per_ml(per_ml))

    def test_load_creates_cages(self):
        chip = Biochip.small_chip(rows=64, cols=64, seed=1)
        cages = chip.load_sample(self.sample(), max_particles=50)
        assert 0 < len(cages) <= 50
        assert chip.cage_count == len(cages)

    def test_load_respects_capacity(self):
        chip = Biochip.small_chip(rows=8, cols=8, seed=1)
        sample = Sample(volume=ul(4.0)).add(polystyrene_bead(), cells_per_ml(1e6))
        with pytest.raises(ExecutionError, match="capacity"):
            chip.load_sample(sample)

    def test_loaded_cages_have_payloads(self):
        chip = Biochip.small_chip(rows=64, cols=64, seed=2)
        cages = chip.load_sample(self.sample(), max_particles=20)
        assert all(c.payload is not None for c in cages)

    def test_overflow_of_free_sites_raises_not_drops(self):
        # 8x8 at spacing 2 -> 16 lattice sites; pre-occupy half of them,
        # then load a sample that fits the lattice but not the free
        # remainder.  The old capacity check compared against the full
        # lattice and silently dropped the surplus particles.
        chip = Biochip.small_chip(rows=8, cols=8, seed=1)
        for row in range(0, 8, 2):
            chip.trap((row, 0))
            chip.trap((row, 4))
        sample = Sample(volume=ul(4.0)).add(polystyrene_bead(), cells_per_ml(1e6))
        with pytest.raises(ExecutionError, match="free"):
            chip.load_sample(sample, max_particles=12)
        assert chip.cage_count == 8  # nothing partially loaded


class TestProtocolExecution:
    def test_full_protocol_run(self):
        chip = Biochip.small_chip()
        protocol = (
            Protocol("run")
            .trap("cell", (5, 5), mammalian_cell())
            .move("cell", (20, 20))
            .sense("cell", samples=2000)
            .incubate("cell", 10.0)
            .release("cell")
        )
        result = Session.simulator(chip).run(protocol)
        assert result.count() == 5
        assert result.detections("cell") == [True]
        assert result.wall_time > 0.0
        assert chip.cage_count == 0

    def test_merge_protocol(self):
        chip = Biochip.small_chip()
        protocol = (
            Protocol("pairing")
            .trap("cell", (10, 10), mammalian_cell())
            .trap("bead", (10, 30), polystyrene_bead())
            .merge("cell", "bead")
            .sense("cell")
            .release("cell")
        )
        result = Session.simulator(chip).run(protocol)
        assert result.count("merge") == 1
        assert chip.cage_count == 0

    def test_result_summary_text(self):
        chip = Biochip.small_chip()
        protocol = Protocol("t").trap("a", (5, 5)).release("a")
        result = Session.simulator(chip).run(protocol)
        assert "protocol 't'" in result.summary()

    def test_detection_accuracy_perfect_on_easy_case(self):
        chip = Biochip.small_chip(seed=4)
        protocol = (
            Protocol("acc")
            .trap("full", (5, 5), mammalian_cell())
            .trap("empty", (5, 15))
            .sense("full", samples=2000)
            .sense("empty", samples=2000)
            .release("full")
            .release("empty")
        )
        result = Session.simulator(chip).run(protocol)
        assert result.detection_accuracy() == 1.0

    def test_predicted_vs_wall_time_same_order(self):
        chip = Biochip.small_chip()
        protocol = (
            Protocol("time")
            .trap("a", (0, 0))
            .move("a", (20, 20))
            .release("a")
        )
        result = Session.simulator(chip).run(protocol)
        assert 0.2 < result.wall_time / result.predicted_makespan < 5.0
