"""Unit tests for the DEP force engine and cage physics."""

import math

import pytest

from repro.bio import mammalian_cell, polystyrene_bead
from repro.physics.constants import um, um_per_s
from repro.physics.dep import DepCage, buoyant_weight, dep_force, dep_force_scale
from repro.physics.dielectrics import water_medium


class TestDepForce:
    def test_sign_follows_cm(self):
        up = dep_force(um(5), 7e-10, 0.5, 1e12)
        down = dep_force(um(5), 7e-10, -0.5, 1e12)
        assert up > 0 and down < 0

    def test_scales_with_radius_cubed(self):
        f1 = dep_force(um(5), 7e-10, 0.5, 1e12)
        f2 = dep_force(um(10), 7e-10, 0.5, 1e12)
        assert f2 / f1 == pytest.approx(8.0)

    def test_force_scale_v_squared(self):
        """The paper's central scaling: F ~ V^2 (claim C1)."""
        f_33 = dep_force_scale(um(10), 3.3, um(20))
        f_5 = dep_force_scale(um(10), 5.0, um(20))
        assert f_5 / f_33 == pytest.approx((5.0 / 3.3) ** 2)

    def test_force_scale_magnitude(self):
        """A 10 um cell at 3.3 V over 20 um pitch: the dimensional upper
        bound is nN-class; the actual force at levitation height (see
        DepCage tests) is 10-100x lower, in the published 10-100 pN
        regime."""
        force = dep_force_scale(um(10), 3.3, um(20))
        assert 1e-11 < force < 1e-8

    def test_buoyant_weight_neutral_density(self):
        assert buoyant_weight(um(10), 997.0) == pytest.approx(0.0, abs=1e-20)

    def test_buoyant_weight_sign(self):
        assert buoyant_weight(um(10), 1070.0) > 0.0
        assert buoyant_weight(um(10), 900.0) < 0.0


class TestDepCage:
    def _bead_cage(self, voltage=3.3):
        return DepCage(
            pitch=um(20),
            voltage=voltage,
            lid_height=um(100),
            particle=polystyrene_bead(um(5)),
            medium=water_medium(),
            frequency=1e6,
            particle_density=1050.0,
        )

    def test_bead_is_ndep(self):
        assert self._bead_cage().real_cm < 0.0

    def test_levitation_height_reasonable(self):
        """The cage levitates the bead somewhere inside the chamber, at
        the scale of the electrode pitch."""
        height = self._bead_cage().levitation_height()
        assert height is not None
        assert um(2) < height < um(60)

    def test_levitation_is_stable_equilibrium(self):
        cage = self._bead_cage()
        z0 = cage.levitation_height()
        assert cage.net_vertical_force(z0 * 0.9) > 0.0  # pushed up below
        assert cage.net_vertical_force(z0 * 1.1) < 0.0  # pushed down above

    def test_lateral_stiffness_positive(self):
        assert self._bead_cage().lateral_stiffness() > 0.0

    def test_max_drag_speed_in_paper_range_order(self):
        """10-100 um/s is the paper's achieved range; the physics should
        allow at least that at 3.3 V."""
        speed = self._bead_cage().max_drag_speed()
        assert speed >= um_per_s(10.0)
        assert speed < um_per_s(10000.0)  # and not absurdly fast

    def test_drag_speed_grows_with_voltage(self):
        slow = self._bead_cage(voltage=1.0).max_drag_speed()
        fast = self._bead_cage(voltage=5.0).max_drag_speed()
        assert fast > slow

    def test_pdep_particle_does_not_levitate(self):
        """A pDEP particle (live cell at 1 MHz in low-sigma buffer) is
        pulled to the field maxima, not levitated."""
        cage = DepCage(
            pitch=um(20),
            voltage=3.3,
            lid_height=um(100),
            particle=mammalian_cell(),
            medium=water_medium(0.02),
            frequency=1e7,
        )
        assert cage.real_cm > 0.0
        assert cage.levitation_height() is None

    def test_weak_drive_cannot_levitate_dense_particle(self):
        cage = DepCage(
            pitch=um(20),
            voltage=0.05,
            lid_height=um(100),
            particle=polystyrene_bead(um(5)),
            medium=water_medium(),
            frequency=1e6,
            particle_density=2500.0,  # silica-dense
        )
        assert cage.levitation_height() is None

    def test_force_vector_restoring_laterally(self):
        cage = self._bead_cage()
        z0 = cage.levitation_height()
        fx, __, __ = cage.force_at(um(4), 0.0, z0)
        assert fx < 0.0  # pulled back toward the axis
