"""Unit tests for workload generators and analysis helpers."""

import math

import numpy as np
import pytest

from repro.analysis import (
    ascii_table,
    bootstrap_ci,
    fit_power_law,
    format_eur,
    format_seconds,
    format_si,
    geometric_mean,
    relative_error,
    series_table,
    summarize,
)
from repro.array import ElectrodeGrid
from repro.physics.constants import um
from repro.workloads import (
    hotspot_workload,
    random_assay,
    random_permutation_workload,
    serial_assay,
    split_sort_workload,
    wide_assay,
)


class TestAssayGenerators:
    def test_random_assay_valid(self):
        graph = random_assay(n_chains=10, seed=0)
        assert graph.validate()
        assert len(graph) >= 10 * 4

    def test_random_assay_deterministic(self):
        a = random_assay(n_chains=6, seed=5)
        b = random_assay(n_chains=6, seed=5)
        assert len(a) == len(b)
        assert a.total_work() == pytest.approx(b.total_work())

    def test_serial_assay_is_chain(self):
        graph = serial_assay(n_steps=8)
        assert graph.critical_path_length() == pytest.approx(graph.total_work())

    def test_wide_assay_is_flat(self):
        graph = wide_assay(n_parallel=8)
        durations = [op.duration for op in graph.operations()]
        assert graph.critical_path_length() == pytest.approx(max(durations))

    def test_merge_fraction_zero(self):
        graph = random_assay(n_chains=6, merge_fraction=0.0, seed=1)
        from repro.scheduling import OpType

        merges = [op for op in graph.operations() if op.op_type is OpType.MERGE]
        assert not merges


class TestRoutingWorkloads:
    def grid(self):
        return ElectrodeGrid(30, 30, um(20))

    def test_random_permutation_legal(self):
        requests = random_permutation_workload(self.grid(), 12, seed=0)
        starts = [r.start for r in requests]
        goals = [r.goal for r in requests]
        for sites in (starts, goals):
            for i, a in enumerate(sites):
                for b in sites[i + 1 :]:
                    assert max(abs(a[0] - b[0]), abs(a[1] - b[1])) >= 2

    def test_split_sort_labels(self):
        requests, labels = split_sort_workload(self.grid(), n_per_class=5, seed=0)
        assert len(requests) == 10
        assert sorted(labels) == [0] * 5 + [1] * 5
        third = self.grid().cols // 3
        for request, label in zip(requests, labels):
            if label == 0:
                assert request.goal[1] < third
            else:
                assert request.goal[1] >= self.grid().cols - third

    def test_hotspot_goals_central(self):
        g = self.grid()
        requests = hotspot_workload(g, 8, seed=0)
        for request in requests:
            assert abs(request.goal[0] - g.rows // 2) <= g.rows // 2
        assert len({r.goal for r in requests}) == 8

    def test_too_many_cages_rejected(self):
        with pytest.raises(ValueError):
            random_permutation_workload(ElectrodeGrid(6, 6, um(20)), 100)


class TestTables:
    def test_format_si(self):
        assert format_si(2.78e-15, "F") == "2.78 fF"
        assert format_si(0.0, "V") == "0 V"
        assert format_si(3.3, "V") == "3.3 V"
        assert format_si(None) == "n/a"
        assert format_si(math.inf, "s") == "inf s"

    def test_format_seconds(self):
        assert format_seconds(2e-6) == "2 us"
        assert format_seconds(0.05) == "50 ms"
        assert format_seconds(30.0) == "30 s"
        assert format_seconds(7200.0) == "2 h"
        assert format_seconds(86400.0 * 3) == "3 d"

    def test_format_eur(self):
        assert format_eur(40000) == "EUR 40,000"
        assert format_eur(5.0) == "EUR 5"

    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all box lines equal width

    def test_ascii_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_series_table(self):
        out = series_table("x", ["y"], [(1, 2), (3, 4)])
        assert "| 1 | 2 |" in out


class TestStats:
    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["n"] == 3
        assert stats["median"] == pytest.approx(2.0)

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_bootstrap_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 1.0, size=200)
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo < 5.0 < hi

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_fit_power_law_recovers_exponent(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**-0.5
        a, b = fit_power_law(x, y)
        assert a == pytest.approx(3.0, rel=1e-6)
        assert b == pytest.approx(-0.5, abs=1e-9)

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)
