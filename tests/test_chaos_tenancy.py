"""Chaos under multi-tenancy: seeded fault schedules against a fleet
serving co-scheduled region-leased jobs.  The contract is the exclusive
chaos contract plus the tenancy guarantees:

* every admitted job reaches a terminal state (DONE or FAILED);
* every COMPLETED job's result is bit-identical to a fault-free
  exclusive reference run -- co-residency never corrupts a neighbour;
* a fault evicts only the tenants it hits: evicted jobs retry/migrate
  via the existing taxonomy and the eviction/retry counters balance;
* the whole schedule replays exactly under a fixed seed.

The wall-clock tier runs the same scenario through worker lanes.
"""

import pytest

from repro import Biochip, ExecutionService, ServiceConfig, Session
from repro.faults import FleetFaultPlan
from repro.service import (
    ConcurrentConfig,
    ConcurrentExecutionService,
    ErrorKind,
    JobState,
)
from repro.workloads import small_footprint_traffic

N_CHIPS = 4
N_JOBS = 24
GRID = Biochip.small_chip().grid


@pytest.fixture(autouse=True)
def trace_integrity():
    """Every chaos test runs under a capturing tracer and the trace
    must close clean: all spans ended, all parents resolve."""
    from repro.observability import tracing

    with tracing.capture() as tracer:
        yield tracer
    assert tracer.open_count() == 0, tracer.open_spans()
    assert tracer.started == tracer.ended
    span_ids = {s["span_id"] for s in tracer.finished_spans}
    for span in tracer.finished_spans:
        assert span["parent_id"] is None or span["parent_id"] in span_ids


def assert_bit_identical(run, reference):
    got = [
        (e.kind, {k: v for k, v in e.detail.items() if k != "cage"})
        for e in run.events
    ]
    want = [
        (e.kind, {k: v for k, v in e.detail.items() if k != "cage"})
        for e in reference.events
    ]
    assert got == want
    assert run.wall_time == pytest.approx(reference.wall_time)
    assert set(run.measurements) == set(reference.measurements)
    for key, expected in reference.measurements.items():
        readings = run.measurements[key]
        assert [m.reading for m in readings] == [m.reading for m in expected]
        assert [m.detected for m in readings] == [
            m.detected for m in expected
        ]


@pytest.mark.parametrize("seed", range(6))
def test_tenant_chaos_fleet_under_seeded_faults(seed):
    plan = FleetFaultPlan(
        dead_pixel_fraction=0.03,
        dead_sensor_fraction=0.02,
        transient_rate=0.08,
        seed=seed,
    )
    service = ExecutionService.dry_run(
        ServiceConfig(
            n_chips=N_CHIPS,
            max_tenants=4,
            max_retries=3,
            retry_backoff=0.25,
            quarantine_after=3,
            restart_cooldown=20.0,
            max_queue_depth=None,
        ),
        faults=plan,
        grid=GRID,
    )
    protocols = small_footprint_traffic(GRID, N_JOBS, seed=seed)
    handles = service.submit_many(protocols)
    results = service.drain()

    # 1. termination: one terminal result per admitted job.
    assert len(results) == N_JOBS
    for handle in handles:
        state = handle.poll()
        assert state.terminal
        assert state in (JobState.DONE, JobState.FAILED)
        if state is JobState.FAILED:
            error = handle.result().error
            assert error is not None
            assert error.kind in (ErrorKind.TRANSIENT, ErrorKind.PERMANENT)

    # 2. correctness: a co-scheduled completion equals its exclusive
    # fault-free reference bit for bit.
    completed = 0
    for protocol, handle in zip(protocols, handles):
        if handle.poll() is JobState.DONE:
            assert_bit_identical(
                handle.result().run, Session.dry_run(grid=GRID).run(protocol)
            )
            completed += 1
    assert completed >= N_JOBS // 2

    # 3. accounting: terminal counters balance; an eviction is a
    # retryable attempt failure under tenancy, so every eviction is
    # either retried or ends a job FAILED -- the counters must cover
    # each other.
    counters = service.snapshot()["counters"]
    assert counters["submitted"] == N_JOBS
    assert counters["completed"] + counters["failed"] == N_JOBS
    assert counters["completed"] == completed
    assert counters["leased"] >= N_JOBS  # every attempt held a lease
    assert counters["evicted"] <= counters["retried"] + counters["failed"]
    assert counters["retried"] <= counters["evicted"] + counters["timeout"]
    assert service.snapshot()["faults"]["transient"] > 0


def test_fault_evicts_only_the_tenants_it_hits():
    """A chip that faults every operation evicts its tenants; they
    migrate to the healthy chip and complete there, co-scheduled."""
    from repro.faults import FaultModel

    shape = (GRID.rows, GRID.cols)
    service = ExecutionService.dry_run(
        ServiceConfig(
            n_chips=2,
            policy="least-loaded",
            max_tenants=4,
            max_retries=2,
            quarantine_after=2,
            restart_cooldown=None,
        ),
        faults=FleetFaultPlan(models={
            0: FaultModel(shape=shape, transient_rate=1.0),
            1: FaultModel.none(shape),
        }),
        grid=GRID,
    )
    protocols = small_footprint_traffic(GRID, 8, seed=3)
    handles = service.submit_many(protocols)
    service.drain()
    results = [h.result() for h in handles]
    assert all(r.ok for r in results)
    assert all(r.chip_id == 1 for r in results)
    counters = service.snapshot()["counters"]
    assert counters["evicted"] >= 1
    assert counters["retried"] >= counters["evicted"] > 0
    assert counters["quarantined"] == 1


def test_tenant_chaos_replays_exactly():
    def run_once():
        service = ExecutionService.dry_run(
            ServiceConfig(
                n_chips=2, max_tenants=4, max_retries=2, quarantine_after=3
            ),
            faults=FleetFaultPlan(
                dead_pixel_fraction=0.05, transient_rate=0.1, seed=21
            ),
            grid=GRID,
        )
        handles = service.submit_many(
            small_footprint_traffic(GRID, 12, seed=2)
        )
        service.drain()
        return [
            (h.poll().value, h.result().chip_id, h.result().attempts)
            for h in handles
        ]

    assert run_once() == run_once()


@pytest.mark.parametrize("seed", range(3))
def test_wall_clock_tenant_chaos(seed):
    """The concurrent tier under the same contract: seeded faults, co-
    residency lanes, every job terminal, completions bit-identical."""
    plan = FleetFaultPlan(
        dead_pixel_fraction=0.03,
        transient_rate=0.08,
        seed=seed,
    )
    protocols = small_footprint_traffic(GRID, N_JOBS, seed=seed)
    with ConcurrentExecutionService.dry_run(
            ConcurrentConfig(
                n_workers=2, max_tenants=4, max_retries=3,
                retry_backoff=0.01, quarantine_after=None,
                poll_interval=0.005,
            ),
            faults=plan, grid=GRID) as service:
        handles = service.submit_many(protocols)
        results = service.drain(timeout=120.0)
        snap = service.snapshot()

    assert len(results) == N_JOBS
    completed = 0
    for protocol, handle in zip(protocols, handles):
        result = handle.result()
        assert result.state in (JobState.DONE, JobState.FAILED)
        if result.state is JobState.DONE:
            assert_bit_identical(
                result.run, Session.dry_run(grid=GRID).run(protocol)
            )
            completed += 1
    assert completed >= N_JOBS // 2
    counters = snap["counters"]
    assert counters["submitted"] == N_JOBS
    assert counters["completed"] + counters["failed"] == N_JOBS
    assert counters["completed"] == completed
    # lanes actually co-scheduled work and merged frames
    assert snap["tenancy"]["groups"] >= 1
    assert snap["tenancy"]["co_residency"]["max"] >= 2
