"""Service-tier fault tolerance: retry-with-backoff, chip quarantine
and migration, per-job timeouts, the structured error taxonomy, and the
admission edge cases under faults (satellites of the robustness PR)."""

import heapq

import numpy as np
import pytest

from repro import Biochip, ExecutionService, Protocol, ServiceConfig
from repro.faults import FaultModel, FleetFaultPlan
from repro.service import ChipHealth, ErrorKind, JobError, JobState

SHAPE = (48, 48)  # Biochip.small_chip() grid


def tiny_protocol(name="tiny", column=10):
    return (
        Protocol(name)
        .trap("p", (2, 2))
        .move("p", (2, column))
        .release("p")
    )


def faulted_service(models, **config_kwargs):
    """Dry-run service with explicit per-chip fault models."""
    config_kwargs.setdefault("n_chips", len(models))
    return ExecutionService.dry_run(
        ServiceConfig(**config_kwargs),
        faults=FleetFaultPlan(models=models),
        grid=Biochip.small_chip().grid,
    )


def always_faulting():
    return FaultModel(shape=SHAPE, transient_rate=1.0)


def faults_first_op():
    return FaultModel(shape=SHAPE, transient_ops={0})


def clean():
    return FaultModel.none(SHAPE)


class TestErrorTaxonomy:
    def test_kinds_and_retryability(self):
        assert ErrorKind.TRANSIENT.retryable
        assert ErrorKind.TIMEOUT.retryable
        assert not ErrorKind.PERMANENT.retryable
        assert not ErrorKind.REJECTED.retryable

    def test_str_returns_bare_message(self):
        error = JobError(kind=ErrorKind.PERMANENT, message="separation rule")
        assert str(error) == "separation rule"
        assert "separation" in str(error)

    def test_permanent_error_not_retried(self):
        # A protocol that violates separation fails identically anywhere:
        # the service must not burn retries on it.
        service = faulted_service({0: clean(), 1: clean()}, max_retries=3)
        bad = (
            Protocol("bad")
            .trap("a", (5, 5))
            .trap("b", (5, 6))  # separation violation
        )
        result = service.submit(bad).wait()
        assert result.state is JobState.FAILED
        assert result.error.kind is ErrorKind.PERMANENT
        assert result.attempts == 1
        assert service.snapshot()["counters"]["retried"] == 0


class TestRetryAndMigration:
    def test_transient_failure_retries_on_another_chip(self):
        service = faulted_service(
            {0: faults_first_op(), 1: clean()},
            policy="least-loaded", max_retries=2,
        )
        result = service.submit(tiny_protocol()).wait()
        assert result.ok
        assert result.attempts == 2
        assert result.chip_id == 1  # steered away from the chip that failed
        counters = service.snapshot()["counters"]
        assert counters["retried"] == 1
        assert counters["migrated"] == 1
        assert service.snapshot()["faults"]["transient"] == 1

    def test_retry_budget_exhausts_to_failed(self):
        service = faulted_service(
            {0: always_faulting(), 1: always_faulting()},
            max_retries=2, quarantine_after=None,
        )
        result = service.submit(tiny_protocol()).wait()
        assert result.state is JobState.FAILED
        assert result.error.kind is ErrorKind.TRANSIENT
        assert result.attempts == 3  # 1 initial + 2 retries
        assert result.error.retryable  # was retryable; budget ran out

    def test_backoff_delays_retry_in_virtual_time(self):
        service = faulted_service(
            {0: faults_first_op()}, n_chips=1,
            max_retries=1, retry_backoff=7.0, quarantine_after=None,
        )
        result = service.submit(tiny_protocol()).wait()
        assert result.ok
        assert result.started_at >= 7.0  # waited out the backoff window

    def test_zero_retries_fails_immediately(self):
        service = faulted_service(
            {0: always_faulting()}, n_chips=1,
            max_retries=0, quarantine_after=None,
        )
        result = service.submit(tiny_protocol()).wait()
        assert result.state is JobState.FAILED
        assert result.attempts == 1


class TestQuarantine:
    def test_chip_quarantined_after_consecutive_failures(self):
        service = faulted_service(
            {0: always_faulting(), 1: clean()},
            policy="least-loaded", max_retries=2, quarantine_after=2,
            restart_cooldown=None,
        )
        # Failed attempts cost ~no chip time, so least-loaded keeps
        # offering chip 0 until the streak benches it.
        results = [service.submit(tiny_protocol(f"p{i}")).wait()
                   for i in range(4)]
        assert all(r.ok for r in results)
        assert service.fleet.worker(0).health is ChipHealth.QUARANTINED
        counters = service.snapshot()["counters"]
        assert counters["quarantined"] == 1
        assert counters["migrated"] >= 2
        # after quarantine, jobs go straight to the healthy chip
        late = service.submit(tiny_protocol("late")).wait()
        assert late.ok and late.chip_id == 1 and late.attempts == 1

    def test_cooldown_restart_restores_chip(self):
        service = faulted_service(
            {0: always_faulting(), 1: clean()},
            max_retries=1, quarantine_after=1, restart_cooldown=0.0,
        )
        service.submit(tiny_protocol()).wait()
        # quarantine happened mid-drain; the next step() restores it
        # (cooldown 0 has always elapsed)
        service.submit(tiny_protocol("again")).wait()
        worker = service.fleet.worker(0)
        assert worker.restarts >= 1
        assert service.snapshot()["counters"]["restarted"] >= 1

    def test_restart_preserves_defect_map_and_clock(self):
        dead = np.zeros(SHAPE, dtype=bool)
        dead[3, 3] = True
        model = FaultModel(shape=SHAPE, dead_electrodes=dead)
        service = faulted_service({0: model}, n_chips=1)
        service.submit(tiny_protocol()).wait()
        before = service.fleet.worker(0).elapsed
        service.restart_chip(0)
        worker = service.fleet.worker(0)
        assert worker.elapsed == pytest.approx(before)  # no time travel
        assert worker.session.backend.model.dead_electrodes[3, 3]
        assert worker.health is ChipHealth.HEALTHY

    def test_fully_quarantined_fleet_restarts_rather_than_hangs(self):
        # quarantine_after=1 benches the only chip on its first fault;
        # every retry needs the backstop restart to find a chip at all.
        # The chip faults op 0 after every restart too, so the job ends
        # FAILED -- the point is it *terminates*, with the restarts
        # actually attempted, instead of stranding the queue.
        service = faulted_service(
            {0: faults_first_op()}, n_chips=1,
            max_retries=3, quarantine_after=1, restart_cooldown=None,
        )
        result = service.submit(tiny_protocol()).wait()
        assert result.state is JobState.FAILED
        assert result.attempts == 4
        assert service.fleet.worker(0).restarts >= 3

    def test_drain_chip_takes_it_out_of_rotation(self):
        service = faulted_service({0: clean(), 1: clean()})
        service.drain_chip(0)
        results = [service.submit(tiny_protocol(f"p{i}")).wait()
                   for i in range(3)]
        assert all(r.chip_id == 1 for r in results)


class TestTimeout:
    def test_slow_attempt_times_out_and_is_discarded(self):
        service = faulted_service(
            {0: clean()}, n_chips=1,
            job_timeout=1e-9, max_retries=0, quarantine_after=None,
        )
        result = service.submit(tiny_protocol()).wait()
        assert result.state is JobState.FAILED
        assert result.error.kind is ErrorKind.TIMEOUT
        assert result.run is None  # past-budget result is not trusted
        assert service.snapshot()["counters"]["timeout"] == 1

    def test_timeout_counts_toward_quarantine(self):
        service = faulted_service(
            {0: clean()}, n_chips=1,
            job_timeout=1e-9, max_retries=0, quarantine_after=2,
            restart_cooldown=None,
        )
        service.submit(tiny_protocol("a")).wait()
        service.submit(tiny_protocol("b")).wait()
        assert service.snapshot()["counters"]["quarantined"] == 1


class TestUnexpectedExceptionSweep:
    """Satellite 2: a non-BiochipError escaping dispatch must still
    sweep the chip and terminalise the job."""

    def test_unexpected_exception_fails_job_and_sweeps_chip(self):
        service = faulted_service({0: clean()}, n_chips=1)
        worker = service.fleet.workers[0]
        original_run = worker.session.run

        def bad_run(program, handles=None):
            handles["p"] = worker.session.backend.trap((2, 2))
            raise ValueError("boom")

        worker.session.run = bad_run
        result = service.submit(tiny_protocol()).wait()
        assert result.state is JobState.FAILED
        assert result.error.kind is ErrorKind.PERMANENT
        assert "unexpected ValueError: boom" in str(result.error)
        # the trapped cage was swept despite the unexpected exception
        assert worker.session.backend.cage_count == 0
        # the chip is not poisoned: a normal job runs clean afterwards
        worker.session.run = original_run
        assert service.submit(tiny_protocol("after")).wait().ok

    def test_unexpected_exception_is_not_retried(self):
        service = faulted_service({0: clean(), 1: clean()}, max_retries=3)
        for worker in service.fleet.workers:
            def bad_run(program, handles=None, _w=worker):
                raise RuntimeError("software bug")
            worker.session.run = bad_run
        result = service.submit(tiny_protocol()).wait()
        assert result.state is JobState.FAILED
        assert result.attempts == 1
        assert service.snapshot()["counters"]["retried"] == 0


class TestAdmissionUnderFaults:
    """Satellite 3: admission edge cases when the queue holds retries
    and chips are faulting."""

    def test_shed_lowest_sheds_a_queued_retry(self):
        service = faulted_service(
            {0: faults_first_op()}, n_chips=1,
            max_queue_depth=1, admission="shed-lowest",
            max_retries=2, quarantine_after=None,
        )
        handle = service.submit(tiny_protocol("victim"), priority=0)
        # Run exactly one attempt: it faults (op 0) and is re-queued as
        # a retry -- the queue's only entry is now a retried job.
        __, job = heapq.heappop(service._queue)
        service._queued_count -= 1
        assert service._dispatch(job) is None
        assert job.attempts == 1 and job.state is JobState.QUEUED
        assert service.queue_depth == 1
        # A hotter submission must be able to shed that retry.
        hot = service.submit(tiny_protocol("hot"), priority=9)
        assert handle.poll() is JobState.SHED
        victim = handle.result()
        assert victim.error.kind is ErrorKind.REJECTED
        assert "shed" in str(victim.error)
        assert victim.attempts == 1  # the burned attempt is recorded
        assert hot.wait().ok

    def test_deadline_expires_while_chip_quarantined(self):
        service = faulted_service(
            {0: always_faulting()}, n_chips=1,
            max_retries=3, retry_backoff=50.0,
            quarantine_after=1, restart_cooldown=None,
        )
        doomed = service.submit(tiny_protocol("doomed"))
        waiting = service.submit(tiny_protocol("waiting"), deadline=10.0)
        results = service.drain()
        assert len(results) == 2
        assert doomed.result().state is JobState.FAILED
        # by the time the faulting chip burned the first job's retries
        # (big backoffs advance the virtual clock), the second job's
        # queue-wait deadline had long expired
        expired = waiting.result()
        assert expired.state is JobState.EXPIRED
        assert expired.error.kind is ErrorKind.REJECTED
        assert "deadline" in str(expired.error)
        assert service.snapshot()["counters"]["quarantined"] >= 1

    def test_submit_many_partial_rejection(self):
        service = faulted_service(
            {0: clean()}, n_chips=1,
            max_queue_depth=2, admission="reject",
        )
        handles = service.submit_many(
            tiny_protocol(f"p{i}") for i in range(4)
        )
        states = [h.poll() for h in handles]
        assert states[:2] == [JobState.QUEUED, JobState.QUEUED]
        assert states[2:] == [JobState.REJECTED, JobState.REJECTED]
        for handle in handles[2:]:
            error = handle.result().error
            assert error.kind is ErrorKind.REJECTED
            assert "queue full" in str(error)
        results = service.drain()
        assert len(results) == 2 and all(r.ok for r in results)


class TestTelemetryInvariants:
    def test_every_submitted_job_is_accounted_once(self):
        service = faulted_service(
            {0: always_faulting(), 1: clean()},
            max_retries=1, max_queue_depth=3, admission="reject",
            quarantine_after=2, restart_cooldown=None,
        )
        handles = service.submit_many(
            tiny_protocol(f"p{i}") for i in range(8)
        )
        service.drain()
        counters = service.snapshot()["counters"]
        terminal = (
            counters["completed"] + counters["failed"]
            + counters["rejected"] + counters["shed"] + counters["expired"]
        )
        assert counters["submitted"] == len(handles) == terminal
        assert all(h.done() for h in handles)
