"""Dispatch-policy tests: who wins on which traffic shape.

Least-loaded must beat round-robin on size-skewed jobs, and affinity
must keep the fleet-wide compiled-program cache hit rate high on
hot-protocol-repeat traffic -- the two properties the serving layer is
built around.
"""

import pytest

from repro import Biochip, ExecutionService, ServiceConfig
from repro.service import (
    AffinityPolicy,
    Fleet,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.workloads import hot_protocol_traffic, service_protocol_variant

GRID = Biochip.small_chip().grid


def serve(policy, jobs, n_chips=2):
    service = ExecutionService.dry_run(
        ServiceConfig(n_chips=n_chips, policy=policy), grid=GRID
    )
    service.submit_many(jobs)
    service.drain()
    return service


def skewed_jobs(n_pairs=6, heavy_seconds=100.0):
    """Alternating heavy/light jobs: adversarial for blind rotation.

    Round-robin on 2 chips sends every heavy job to chip 0 and every
    light job to chip 1; least-loaded interleaves them.
    """
    from repro import Protocol

    jobs = []
    for i in range(n_pairs):
        jobs.append(
            Protocol(f"heavy{i}")
            .trap("p", (2, 2))
            .incubate("p", heavy_seconds)
            .release("p")
        )
        jobs.append(
            Protocol(f"light{i}").trap("p", (2, 2)).release("p")
        )
    return jobs


class TestPolicySelection:
    def test_make_policy_resolves_names_and_instances(self):
        assert isinstance(make_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(make_policy("least-loaded"), LeastLoadedPolicy)
        assert isinstance(make_policy("affinity"), AffinityPolicy)
        custom = LeastLoadedPolicy()
        assert make_policy(custom) is custom
        with pytest.raises(ValueError, match="unknown dispatch policy"):
            make_policy("random")

    def test_round_robin_rotates(self):
        service = serve("round-robin", skewed_jobs(4), n_chips=2)
        per_chip = service.snapshot()["fleet"]["jobs_per_chip"]
        assert per_chip[0] == per_chip[1] == 4  # blind 50/50 split


class TestLeastLoadedBeatsRoundRobin:
    def test_skewed_workload_makespan(self):
        jobs = skewed_jobs(6)
        rr = serve("round-robin", jobs, n_chips=2)
        ll = serve("least-loaded", jobs, n_chips=2)
        # identical total work either way...
        assert ll.fleet.total_busy_time == pytest.approx(
            rr.fleet.total_busy_time, rel=0.01
        )
        # ...but round-robin stacks all heavy jobs on one chip, so its
        # makespan (fleet virtual wall time) is much worse
        assert ll.fleet.now < 0.7 * rr.fleet.now

    def test_least_loaded_balances_utilization(self):
        jobs = skewed_jobs(6)
        rr_util = serve("round-robin", jobs, 2).snapshot()["fleet"]["utilization"]
        ll_util = serve("least-loaded", jobs, 2).snapshot()["fleet"]["utilization"]
        assert min(ll_util.values()) > min(rr_util.values())
        assert min(ll_util.values()) > 0.8


class TestAffinityCacheLocality:
    def test_affinity_hit_rate_on_hot_repeat(self):
        jobs = hot_protocol_traffic(GRID, 120, hot_fraction=0.9, seed=11)
        service = serve("affinity", jobs, n_chips=4)
        stats = service.fleet.cache_stats()
        assert stats.hit_rate >= 0.90

    def test_affinity_beats_round_robin_on_misses(self):
        jobs = hot_protocol_traffic(GRID, 120, hot_fraction=0.9, seed=11)
        affinity = serve("affinity", jobs, n_chips=4)
        rr = serve("round-robin", jobs, n_chips=4)
        assert (affinity.fleet.cache_stats().misses
                < rr.fleet.cache_stats().misses)

    def test_bounded_load_affinity_still_uses_the_fleet(self):
        # a single hot fingerprint must not serialise all chips behind
        # one cache: bounded-load affinity spreads it
        jobs = hot_protocol_traffic(GRID, 80, hot_fraction=1.0, seed=3)
        service = serve("affinity", jobs, n_chips=4)
        per_chip = service.snapshot()["fleet"]["jobs_per_chip"]
        assert sum(1 for count in per_chip.values() if count > 0) == 4

    def test_pure_sticky_affinity_pins_to_one_chip(self):
        jobs = hot_protocol_traffic(GRID, 20, hot_fraction=1.0, seed=3)
        service = serve(AffinityPolicy(load_factor=None), jobs, n_chips=4)
        per_chip = service.snapshot()["fleet"]["jobs_per_chip"]
        assert sum(1 for count in per_chip.values() if count > 0) == 1
        assert service.fleet.cache_stats().misses == 1

    def test_affinity_forgets_homes_whose_program_was_evicted(self):
        from repro.core.backend import DryRunBackend

        fleet = Fleet.spawn(DryRunBackend(grid=GRID), 2, cache_capacity=1)
        w0, w1 = fleet.workers
        policy = AffinityPolicy(load_factor=None)  # pure sticky
        assert policy.select(fleet.workers, "fpA") is w0  # first placement
        w0.cache.put(("fpA", GRID.rows, GRID.cols), object())
        w0.busy_time = 100.0  # w0 is now the loaded chip
        assert policy.select(fleet.workers, "fpA") is w0  # sticky while cached
        # another fingerprint's program evicts fpA from w0's 1-slot cache
        w0.cache.put(("fpB", GRID.rows, GRID.cols), object())
        assert not w0.cache.holds_fingerprint("fpA")
        # the stale home claim must not keep routing fpA to w0
        assert policy.select(fleet.workers, "fpA") is w1

    def test_affinity_homes_map_is_bounded(self):
        from repro.core.backend import DryRunBackend

        fleet = Fleet.spawn(DryRunBackend(grid=GRID), 2, cache_capacity=None)
        policy = AffinityPolicy(max_tracked=2)
        for i in range(5):
            policy.select(fleet.workers, f"fp{i}")
        assert len(policy._homes) <= 2

    def test_empty_fleet_rejected_even_from_iterator(self):
        with pytest.raises(ValueError, match="at least one chip"):
            Fleet(iter([]))
        with pytest.raises(ValueError, match="n_chips"):
            from repro.core.backend import DryRunBackend

            Fleet.spawn(DryRunBackend(grid=GRID), 0)

    def test_fleet_spawn_isolation(self):
        from repro.core.backend import DryRunBackend

        template = DryRunBackend(grid=GRID)
        template.trap((5, 5))
        fleet = Fleet.spawn(template, 3)
        assert len(fleet) == 3
        assert all(w.session.backend.cage_count == 0 for w in fleet)
        assert all(w.elapsed == 0.0 for w in fleet)
        backends = {id(w.session.backend) for w in fleet}
        assert len(backends) == 3
