"""Design-space exploration: pick the CMOS node and the design flow.

The "DATE-audience" example: before building a biochip, run the two
CAD studies the paper's considerations call for --

1. technology selection (claim C1): sweep the node library against the
   biology-imposed requirements and print the ranking;
2. design-flow choice (Figs. 1/2): simulate both flows for the
   electronic and the fluidic halves of the project and print who wins.

Run with:  python examples/design_space_exploration.py
"""

from repro.analysis import ascii_table, format_eur, format_seconds, format_si
from repro.designflow import electronic_scenario, fluidic_scenario
from repro.physics.constants import um, um_per_s
from repro.technology import ApplicationRequirements, TechnologySelector


def technology_study():
    print("=" * 72)
    print("1. Technology selection (cells 20-30 um, pitch 20 um, 50 um/s)")
    print("=" * 72)
    requirements = ApplicationRequirements(
        cell_radius=um(10.0),
        electrode_pitch=um(20.0),
        target_speed=um_per_s(50.0),
        array_side=320,
    )
    selector = TechnologySelector(requirements)
    rows = []
    for evaluation in selector.evaluate_all():
        rows.append([
            evaluation.node.name,
            f"{evaluation.drive_voltage:.1f} V",
            format_si(evaluation.dep_force, "N"),
            f"{evaluation.speed_margin:.1f}x",
            format_eur(evaluation.die_cost),
            f"{evaluation.figure_of_merit:.3f}",
        ])
    print(ascii_table(
        ["node", "drive", "DEP force", "speed margin", "die cost", "FOM"], rows
    ))
    best = selector.best()
    print(f"\n-> best node: {best.node.name} ({best.node.year}); the paper's "
          f"point exactly: not the newest technology.\n")


def designflow_study():
    print("=" * 72)
    print("2. Design-flow choice (Fig. 1 vs Fig. 2), Monte Carlo over projects")
    print("=" * 72)
    for label, scenario in (
        ("electronic block (accurate models, MPW fab)", electronic_scenario),
        ("fluidic package (uncertain models, dry-film fab)", fluidic_scenario),
    ):
        sim_stats, build_stats = scenario(runs=100, seed=0)
        rows = [
            [stats.flow, format_seconds(stats.median_time),
             format_eur(stats.median_cost), f"{stats.mean_fabrications:.2f}"]
            for stats in (sim_stats, build_stats)
        ]
        print(ascii_table(
            ["flow", "median time", "median cost", "mean fabs"], rows,
            title=label,
        ))
        winner = (
            "simulate-first (Fig. 1)"
            if sim_stats.median_time < build_stats.median_time
            else "build-and-test (Fig. 2)"
        )
        print(f"-> winner on time: {winner}\n")


def main():
    technology_study()
    designflow_study()


if __name__ == "__main__":
    main()
