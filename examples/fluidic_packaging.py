"""Fluidic packaging walk-through: design the Fig. 3 device.

Builds the hybrid CMOS + dry-film + ITO-glass stack, sizes the chamber
for the 4 ul drop, generates and DRC-checks the mask layout, estimates
priming and evaporation budgets, and prices the fabrication run --
the complete Fig. 2-style packaging iteration, in software.

Run with:  python examples/fluidic_packaging.py
"""

from repro.analysis import ascii_table, format_eur, format_seconds, format_si
from repro.fluidics import (
    EvaporationModel,
    capillary_pressure,
    washburn_fill_time,
)
from repro.packaging import (
    dry_film_process,
    iteration_from_process,
    paper_device_stack,
)
from repro.physics.constants import mm, to_um, ul


def main():
    stack = paper_device_stack()
    chamber = stack.chamber()

    print("Device stack (Fig. 3):")
    print(ascii_table(
        ["layer", "spec"],
        [
            ["ITO glass lid", f"{stack.lid.width * 1e3:.1f} x "
             f"{stack.lid.depth * 1e3:.1f} mm, "
             f"{stack.lid.ito_sheet_resistance:.0f} ohm/sq"],
            ["dry-film walls", f"{to_um(stack.wall_height):.0f} um high"],
            ["CMOS die", f"{stack.die.width * 1e3:.1f} x "
             f"{stack.die.depth * 1e3:.1f} mm"],
            ["chamber", f"{chamber.volume_ul:.2f} ul"],
        ],
    ))

    problems = stack.validate()
    print(f"\nstack validation: {'CLEAN' if not problems else problems}")

    layout = stack.layout()
    min_feature = min(l.min_feature() for l in layout.layers.values())
    print(f"mask layout: {layout.layer_count} layers, "
          f"{layout.total_rect_count()} rectangles, "
          f"min feature {format_si(min_feature, 'm')} "
          f"(paper: 'order of hundred microns')")

    # Wetting / priming: will the chamber self-fill?
    theta = 65.0  # dry-film resist sidewall contact angle (degrees)
    pressure = capillary_pressure(stack.wall_height, theta)
    fill = washburn_fill_time(mm(9.0), stack.wall_height, theta)
    print(f"\npriming at contact angle {theta:.0f} deg: capillary pressure "
          f"{pressure:.0f} Pa, self-fill in {format_seconds(fill)}")

    # Evaporation budget through the two 1 mm ports.
    evaporation = EvaporationModel(
        exposed_area=2 * (mm(1.0)) ** 2, relative_humidity=0.5
    )
    budget = evaporation.assay_budget(ul(4.0), max_concentration_factor=1.1)
    print(f"evaporation: 10% concentration drift after {format_seconds(budget)} "
          f"-> assays should finish within that budget")

    # Fabrication economics for this design.
    process = dry_film_process(mask_cost=5.0, layers=1)
    iteration = iteration_from_process(process)
    print("\nfabrication (dry-film, ref [5] of the paper):")
    print(ascii_table(
        ["step", "time", "consumables", "yield"],
        [
            [s.name, format_seconds(s.duration), format_eur(s.consumable_cost),
             f"{s.step_yield:.0%}"]
            for s in process.steps
        ],
    ))
    print(f"turnaround per good batch: {format_seconds(iteration.turnaround)} "
          f"(paper: 'two-three days')")
    print(f"cost per iteration: {format_eur(iteration.cost)}; "
          f"lab setup: {format_eur(iteration.setup_cost)} "
          f"(paper: 'tens of thousands of euros')")


if __name__ == "__main__":
    main()
