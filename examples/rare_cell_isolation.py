"""Rare-cell isolation: find and extract tumour cells from a background.

The "cheaper, better, faster" diagnostic assay the paper's introduction
motivates: a sample with a large leukocyte background and a handful of
large tumour cells is loaded onto the array; every cage is sensed, the
rare large cells are flagged by their stronger capacitive signature,
verified by size, and routed to a recovery zone.

Run with:  python examples/rare_cell_isolation.py
"""

import numpy as np

from repro import Biochip
from repro.bio import Sample, cells_per_ml, mammalian_cell, tumor_cell
from repro.physics.constants import ul


def main():
    chip = Biochip.small_chip(rows=48, cols=48, seed=3)

    # A scaled-down sample: background lymphocytes + rare tumour cells.
    sample = Sample(volume=ul(0.25))
    sample.add(mammalian_cell(radius=5e-6), cells_per_ml(3.0e5), size_cv=0.06)
    sample.add(tumor_cell(), cells_per_ml(2.0e4), size_cv=0.06)

    cages = chip.load_sample(sample, spacing=4, max_particles=100)
    n_tumor_truth = sum(
        1 for c in cages if c.payload is not None and "tumor" in c.payload.name
    )
    print(f"loaded {len(cages)} cells, {n_tumor_truth} tumour cells (ground truth)")

    # Screen every cage in one array-wide scan: the tumour cells' larger
    # volume gives a much larger capacitive signal (dC ~ R^3), so a
    # simple threshold on the averaged reading separates them.
    scan = chip.sense_all(n_samples=2000)
    values = np.array([abs(result.reading) for __, result in scan])
    threshold = values.mean() + 2.0 * values.std()
    flagged = [
        chip.cages.cage(cage_id)
        for (cage_id, result) in scan
        if abs(result.reading) > threshold
    ]
    print(f"screen: flagged {len(flagged)} candidates "
          f"(threshold {threshold * 1e3:.2f} mV)")

    # Discard the background (release its cages back to the bulk), then
    # route the candidates to the recovery zone in one frame-parallel
    # batch move -- every candidate advances per frame reprogram.
    flagged_ids = {cage.cage_id for cage in flagged}
    for cage in list(chip.cages.cages):
        if cage.cage_id not in flagged_ids:
            chip.release(cage.cage_id)

    recovery_sites = [(r, c) for r in range(0, 12, 3) for c in range(0, 12, 3)]
    goals = {
        cage.cage_id: site for cage, site in zip(flagged, recovery_sites)
    }
    if goals:
        report = chip.move_many(goals)
        print(f"recovery routing: {report['moves']} cage-steps in "
              f"{report['frames']} frame reprograms")
    recovered = [chip.cages.cage(cage_id) for cage_id in goals]
    n_correct = sum(
        1 for c in recovered if c.payload is not None and "tumor" in c.payload.name
    )
    print(f"recovered {len(recovered)} cells into the recovery zone; "
          f"{n_correct} are true tumour cells")
    if n_tumor_truth:
        print(f"capture rate: {n_correct}/{n_tumor_truth} "
              f"({n_correct / n_tumor_truth:.0%})")
    purity = n_correct / len(recovered) if recovered else float("nan")
    print(f"purity of recovered pool: {purity:.0%}")
    print(f"total chip time: {chip.elapsed:.0f} s")


if __name__ == "__main__":
    main()
