"""Quickstart: trap, move, sense, release one particle.

Runs the smallest end-to-end loop of the platform with the v2 session
API: build a simulated chip, write a four-step protocol against it,
execute through a :class:`Session`, and read back the measurement --
the "hello world" of the library.

Run with:  python examples/quickstart.py
"""

from repro import Biochip, Protocol, Session
from repro.bio import mammalian_cell
from repro.physics.constants import to_um


def main():
    # A 48x48 corner of the paper's 320x320 chip -- same pitch, same
    # physics, faster to simulate.
    chip = Biochip.small_chip(rows=48, cols=48, seed=0)
    print(f"chip: {chip.grid.rows}x{chip.grid.cols} electrodes at "
          f"{to_um(chip.grid.pitch):.0f} um pitch, "
          f"{chip.drive_voltage} V drive ({chip.node.name} CMOS)")

    cell = mammalian_cell()
    cage_physics = chip.dep_cage(cell)
    print(f"cell: {cell.name}, Re[CM] at {chip.drive_frequency / 1e6:.0f} MHz = "
          f"{cage_physics.real_cm:.2f}")

    protocol = (
        Protocol("quickstart")
        .trap("cell", site=(10, 10), particle=cell)
        .move("cell", (30, 35))
        .sense("cell", samples=2000)
        .release("cell")
    )

    session = Session.simulator(chip)
    result = session.run(protocol)
    print()
    print(result.summary())
    print()
    reading = result.readings("cell")[0]
    detected = result.detections("cell")[0]
    print(f"sensor reading: {reading * 1e3:.2f} mV -> detected={detected}")
    print(f"simulated chip time: {chip.elapsed:.1f} s "
          f"(motion dominates, electronics is microseconds)")

    # The same protocol costs nearly nothing on the planning backend --
    # use Session.dry_run() to sweep protocol variants at scale.
    dry = Session.dry_run(grid=chip.grid).run(protocol)
    print(f"dry-run estimate: {dry.wall_time:.1f} s chip time "
          f"(vs {result.wall_time:.1f} s simulated)")


if __name__ == "__main__":
    main()
