"""Viability sorting: separate live from dead cells by DEP signature.

The canonical application of the paper's platform.  Dead cells have a
permeabilised membrane, which flips their dielectrophoretic response in
the right frequency window; the chip senses every caged cell, classifies
it, and routes live cells to the left bank and dead cells to the right
bank -- thousands of cells in parallel on the real chip, a couple dozen
here.

This example uses the v2 session API end to end: one protocol traps the
population, scans the whole array (`sense_all`), and relocates both
banks concurrently with a single frame-parallel `move_many` -- the
paper's massively parallel manipulation primitive.

Run with:  python examples/viability_sort.py
"""

import numpy as np

from repro import Biochip, Protocol, Session
from repro.bio import mammalian_cell
from repro.physics.dielectrics import water_medium
from repro.sensing import SpectrumClassifier


def pick_operating_frequency(live, dead, medium):
    """Find a frequency where the live/dead CM contrast is largest --
    the assay design step a biologist would do first."""
    freqs = np.logspace(4.5, 6.5, 60)
    contrast = np.abs(live.real_cm(medium, freqs) - dead.real_cm(medium, freqs))
    best = int(np.argmax(contrast))
    return float(freqs[best]), float(contrast[best])


def main():
    medium = water_medium(0.02)
    live, dead = mammalian_cell(viable=True), mammalian_cell(viable=False)

    frequency, contrast = pick_operating_frequency(live, dead, medium)
    print(f"operating frequency: {frequency / 1e3:.0f} kHz "
          f"(live/dead Re[CM] contrast {contrast:.2f})")

    chip = Biochip.small_chip(rows=32, cols=32, seed=1)
    chip.drive_frequency = frequency

    # A mixed population on a lattice in the chip centre.
    rng = np.random.default_rng(2)
    population = []  # (handle, particle, site, truth)
    for row in range(4, 28, 4):
        for col in range(10, 24, 4):
            viable = bool(rng.random() < 0.6)
            particle = live if viable else dead
            population.append((f"cell{len(population)}", particle, (row, col), viable))
    n_live_truth = sum(1 for *__, v in population if v)
    print(f"population: {len(population)} cells ({n_live_truth} live, "
          f"{len(population) - n_live_truth} dead)")

    # Classify each cell by frequency-swept DEP spectroscopy: probe
    # Re[CM] at discriminating frequencies and match against the
    # live/dead template library -- a label-free assay, no ground truth.
    classifier = SpectrumClassifier({"live": live, "dead": dead}, medium)
    class_rng = np.random.default_rng(7)
    decisions = {
        handle: classifier.classify_particle(particle, sigma=0.05, rng=class_rng)
        == "live"
        for handle, particle, __, __ in population
    }
    n_misread = sum(
        1 for handle, __, __, truth in population if decisions[handle] != truth
    )
    print(f"spectroscopic classification: {len(population) - n_misread}/"
          f"{len(population)} match ground truth")

    # One protocol: trap everything, scan the whole array at once, then
    # route live cells to the left bank and dead cells to the right bank
    # in a single frame-parallel group move.
    protocol = Protocol("viability-sort")
    for handle, particle, site, __ in population:
        protocol.trap(handle, site, particle)
    protocol.sense_all(samples=2000, store_as="scan")
    left_rows = iter(range(0, 32, 2))
    right_rows = iter(range(0, 32, 2))
    goals = {}
    for handle, __, __, __ in population:
        if decisions[handle]:
            goals[handle] = (next(left_rows), 2)
        else:
            goals[handle] = (next(right_rows), 29)
    protocol.move_many(goals)

    result = Session.simulator(chip).run(protocol)
    batch = next(e for e in result.events if e.kind == "move_many")
    print(f"sorted {batch.detail['moves']} cage-steps in "
          f"{batch.detail['frames']} frame reprograms, "
          f"{result.wall_time:.1f} s chip time")

    # Verify the sort on the chip itself against ground truth
    # (classification errors, if any, become sort impurities -- that is
    # the assay's error budget).  Trap events carry the handle -> cage
    # binding, which maps each cell onto its final site.
    cage_of = {
        e.detail["handle"]: e.detail["cage"]
        for e in result.events
        if e.kind == "trap"
    }
    correct = 0
    for handle, __, __, truth in population:
        on_left = chip.cages.cage(cage_of[handle]).site[1] < chip.grid.cols // 2
        correct += int(on_left == truth)
    print(f"sort purity: {correct}/{len(population)} cells on the correct bank")


if __name__ == "__main__":
    main()
