"""Viability sorting: separate live from dead cells by DEP signature.

The canonical application of the paper's platform.  Dead cells have a
permeabilised membrane, which flips their dielectrophoretic response in
the right frequency window; the chip senses every caged cell, classifies
it, and routes live cells to the left bank and dead cells to the right
bank -- thousands of cells in parallel on the real chip, a handful here.

This example uses the mid-level API (cage manager + batch router)
directly, which is what a throughput-oriented user would do.

Run with:  python examples/viability_sort.py
"""

import numpy as np

from repro import Biochip
from repro.bio import mammalian_cell
from repro.physics.dielectrics import water_medium
from repro.routing import BatchRouter, MotionPlanner, RoutingRequest


def pick_operating_frequency(live, dead, medium):
    """Find a frequency where the live/dead CM contrast is largest --
    the assay design step a biologist would do first."""
    freqs = np.logspace(4.5, 6.5, 60)
    contrast = np.abs(live.real_cm(medium, freqs) - dead.real_cm(medium, freqs))
    best = int(np.argmax(contrast))
    return float(freqs[best]), float(contrast[best])


def main():
    medium = water_medium(0.02)
    live, dead = mammalian_cell(viable=True), mammalian_cell(viable=False)

    frequency, contrast = pick_operating_frequency(live, dead, medium)
    print(f"operating frequency: {frequency / 1e3:.0f} kHz "
          f"(live/dead Re[CM] contrast {contrast:.2f})")

    chip = Biochip.small_chip(rows=32, cols=32, seed=1)
    chip.drive_frequency = frequency

    # Load a mixed population onto a lattice in the chip centre.
    rng = np.random.default_rng(2)
    cages, truth = [], []
    for i, row in enumerate(range(4, 28, 4)):
        for j, col in enumerate(range(10, 24, 4)):
            viable = bool(rng.random() < 0.6)
            particle = live if viable else dead
            cages.append(chip.trap((row, col), particle))
            truth.append(viable)
    print(f"loaded {len(cages)} cells ({sum(truth)} live, "
          f"{len(truth) - sum(truth)} dead)")

    # Classify each cell by frequency-swept DEP spectroscopy: probe
    # Re[CM] at discriminating frequencies and match against the
    # live/dead template library -- a label-free assay, no ground truth.
    from repro.sensing import SpectrumClassifier

    classifier = SpectrumClassifier(
        {"live": live, "dead": dead}, medium
    )
    class_rng = np.random.default_rng(7)
    decisions = [
        classifier.classify_particle(cage.payload, sigma=0.05, rng=class_rng)
        == "live"
        for cage in cages
    ]
    n_misread = sum(1 for d, t in zip(decisions, truth) if d != t)
    print(f"spectroscopic classification: {len(cages) - n_misread}/{len(cages)} "
          f"match ground truth")

    # Route live cells to the left bank, dead to the right, concurrently.
    left_rows = iter(range(2, 31, 2))
    right_rows = iter(range(2, 31, 2))
    requests = []
    for cage, is_live in zip(cages, decisions):
        if is_live:
            goal = (next(left_rows), 2)
        else:
            goal = (next(right_rows), 29)
        requests.append(RoutingRequest(cage.cage_id, cage.site, goal))

    plan = BatchRouter(chip.grid).plan(requests)
    planner = MotionPlanner(chip.cages, chip.addresser, cage_speed=chip.cage_speed)
    planner.execute(plan)

    print(f"sorted in {plan.makespan} frames, "
          f"{planner.wall_clock():.1f} s chip time "
          f"(electronics fraction {planner.electronics_fraction():.1e})")

    # Verify the sort against ground truth (classification errors, if
    # any, become sort impurities -- that is the assay's error budget).
    correct = 0
    for cage, viable in zip(cages, truth):
        on_left = cage.site[1] < chip.grid.cols // 2
        correct += int(on_left == viable)
    print(f"sort purity: {correct}/{len(cages)} cells on the correct bank")


if __name__ == "__main__":
    main()
