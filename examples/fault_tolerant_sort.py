"""Viability sorting on a fleet that is actively failing.

The same live/dead sort as ``viability_sort.py`` -- trap a mixed cell
population, scan the array, route live cells left and dead cells right
-- but served through the fault-tolerant execution tier instead of a
single pristine chip.  The fleet here is deliberately broken: every
chip carries a seeded defect map (dead electrodes, 2%/op transient
glitches) and one chip is a lemon that faults every operation.

The walkthrough shows the self-healing loop end to end:

1. a batch of sort jobs is submitted to the 4-chip fleet;
2. transient faults burn an attempt, back off, and retry -- preferring
   chips the job has not failed on yet (migration);
3. the lemon chip's failure streak benches it (quarantine) and its
   jobs move to healthy hardware;
4. every completed job is checked against a fault-free reference run:
   same traps, same readings, same detections, every cell on its goal
   site -- faults cost retries and detours, never correctness.

Run with:  python examples/fault_tolerant_sort.py
"""

import numpy as np

from repro import Biochip, ExecutionService, Protocol, ServiceConfig, Session
from repro.bio import mammalian_cell
from repro.faults import FaultModel, FleetFaultPlan
from repro.physics.dielectrics import water_medium
from repro.sensing import SpectrumClassifier
from repro.service import ChipHealth, JobState

N_CHIPS = 4
N_JOBS = 8


def build_sort_protocol(seed=2):
    """The viability-sort protocol from ``viability_sort.py``: trap a
    mixed population on a lattice, scan the whole array, then route
    live cells to the left bank and dead cells to the right bank in one
    frame-parallel group move."""
    medium = water_medium(0.02)
    live, dead = mammalian_cell(viable=True), mammalian_cell(viable=False)
    rng = np.random.default_rng(seed)

    population = []
    for row in range(4, 28, 4):
        for col in range(10, 24, 4):
            particle = live if rng.random() < 0.6 else dead
            population.append((f"cell{len(population)}", particle, (row, col)))

    classifier = SpectrumClassifier({"live": live, "dead": dead}, medium)
    class_rng = np.random.default_rng(seed + 5)
    decisions = {
        handle: classifier.classify_particle(particle, sigma=0.05,
                                             rng=class_rng) == "live"
        for handle, particle, __ in population
    }

    protocol = Protocol(f"viability-sort-{seed}")
    for handle, particle, site in population:
        protocol.trap(handle, site, particle)
    protocol.sense_all(samples=2000, store_as="scan")
    # Two columns per bank: either class can dominate a seeded
    # population, so each bank holds the full population if needed.
    left_sites = iter([(r, c) for c in (2, 4) for r in range(0, 32, 2)])
    right_sites = iter([(r, c) for c in (29, 27) for r in range(0, 32, 2)])
    goals = {}
    for handle, __, __ in population:
        goals[handle] = (next(left_sites) if decisions[handle]
                         else next(right_sites))
    protocol.move_many(goals)
    return protocol


def canonical_events(run):
    """Everything the assay observes, from the event stream.

    Backend cage ids are dropped (a service chip's cage counter keeps
    counting across the jobs it served), and group moves compare by
    the cages that reached their goals rather than the elementary step
    count -- on a defective chip the router legally detours around
    dead electrodes, so the route differs while the outcome (every
    cell on its goal site, every reading, every detection) must not.
    """
    events = []
    for e in run.events:
        detail = {k: v for k, v in e.detail.items() if k != "cage"}
        if e.kind == "move_many":
            detail = {"cages": detail.get("cages")}
        events.append((e.kind, detail))
    return events


def main():
    chip = Biochip.small_chip(rows=32, cols=32, seed=1)
    shape = (chip.grid.rows, chip.grid.cols)

    # A deliberately unhealthy fleet: every chip gets a seeded random
    # defect map, and chip 0 is a lemon that faults every operation.
    # (A sort job is ~50 chip ops, so even these modest per-op rates
    # fail a third of the attempts -- the retry tier earns its keep.)
    plan = FleetFaultPlan(
        dead_pixel_fraction=0.01,
        transient_rate=0.005,
        seed=0,
        models={0: FaultModel(shape=shape, transient_rate=1.0)},
    )
    service = ExecutionService.simulator(
        ServiceConfig(
            n_chips=N_CHIPS,
            policy="least-loaded",
            max_retries=3,
            retry_backoff=0.5,
            quarantine_after=2,
            restart_cooldown=None,  # the lemon stays benched
        ),
        chip=chip,
        faults=plan,
    )

    protocols = [build_sort_protocol(seed=s) for s in range(N_JOBS)]
    print(f"submitting {N_JOBS} sort jobs to a {N_CHIPS}-chip fleet "
          f"(chip 0 faults every op; 1% dead pixels fleet-wide)")
    handles = service.submit_many(protocols)
    service.drain()

    # 1. every job is terminal -- the drain loop never hangs.
    done = [h for h in handles if h.poll() is JobState.DONE]
    failed = [h for h in handles if h.poll() is JobState.FAILED]
    print(f"terminal states: {len(done)} completed, {len(failed)} failed")

    # 2. completed results match a fault-free reference in everything
    # the assay observes -- faults cost retries and detours, never a
    # wrong reading or a cell on the wrong site.
    verified = 0
    for protocol, handle in zip(protocols, handles):
        if handle.poll() is not JobState.DONE:
            continue
        pristine = Biochip.small_chip(rows=32, cols=32, seed=1)
        reference = Session.simulator(pristine).run(protocol)
        assert canonical_events(handle.result().run) == \
            canonical_events(reference), "fault caused silent corruption!"
        verified += 1
    print(f"observably identical to fault-free reference: "
          f"{verified}/{len(done)}")

    # 3. the self-healing story in numbers.
    counters = service.snapshot()["counters"]
    print(f"retries {counters['retried']}, migrations "
          f"{counters['migrated']}, quarantines {counters['quarantined']}")
    lemon = service.fleet.worker(0)
    print(f"chip 0 health: {lemon.health.value} "
          f"(streak benched it after {service.config.quarantine_after} "
          f"consecutive failures)")
    assert lemon.health is ChipHealth.QUARANTINED
    chip_ids = sorted({h.result().chip_id for h in done})
    print(f"completed jobs ran on chips {chip_ids} -- never the lemon")
    print(f"fault injections: {service.snapshot()['faults']}")


if __name__ == "__main__":
    main()
