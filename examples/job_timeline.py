"""Tracing a retried-and-migrated job and inspecting its timeline.

A 2-chip fleet where *both* chips glitch on their first operation after
power-up: the job faults on chip 0, backs off, migrates to chip 1,
faults again, backs off, migrates back and completes on the third
attempt.  With a tracer installed the whole story is captured as one
span tree -- the job root span with its admit / dispatch / backoff /
migrate events, an ``attempt`` span per try (chip id, cache-hit flag,
classified error kind), and under each attempt the ``session.run``,
``chip.move_many`` and ``routing.plan`` spans with the fault-injector
events stamped where the glitch actually happened.

The walkthrough:

1. serve the job with an in-memory capture and render its timeline;
2. write the same trace to JSONL + flight-recorder files, the format
   the CLI inspector reads (``python -m repro.observability.timeline``);
3. print the Prometheus text exposition of the service telemetry.

Run with:  python examples/job_timeline.py
"""

import os
import tempfile

from repro import (
    Biochip,
    ExecutionService,
    FlightRecorder,
    JsonlSpanExporter,
    ServiceConfig,
    Tracer,
)
from repro.faults import FaultModel, FleetFaultPlan
from repro.observability import timeline, tracing
from repro.workloads import hot_protocol_traffic


def build_service():
    """A 2-chip fleet whose chips both fault their first op."""
    shape = (48, 48)
    plan = FleetFaultPlan(models={
        0: FaultModel(shape=shape, transient_ops=frozenset({0})),
        1: FaultModel(shape=shape, transient_ops=frozenset({0})),
    })
    config = ServiceConfig(n_chips=2, max_retries=2, retry_backoff=0.5,
                           quarantine_after=None)
    return ExecutionService.simulator(config, faults=plan)


def main():
    protocol = hot_protocol_traffic(Biochip.small_chip().grid, 1, seed=3)[0]

    # 1. in-memory capture: the idiom for tests and notebooks.
    service = build_service()
    with tracing.capture() as tracer:
        result = service.submit(protocol).wait()
    print(f"job finished: state={result.state.value} "
          f"attempts={result.attempts} chip={result.chip_id}\n")
    print(timeline.render_job_timeline(tracer.finished_spans, 0))

    # 2. the same trace streamed to disk -- what REPRO_TRACE=path does
    # for the benchmarks.  The flight recorder rides along and dumps
    # its ring next to the trace if a job fails or a chip is benched.
    path = os.path.join(tempfile.mkdtemp(prefix="repro-trace-"),
                        "trace.jsonl")
    tracer = Tracer(exporters=[JsonlSpanExporter(path)],
                    flight_recorder=FlightRecorder(path=path + ".flight"))
    previous = tracing.install(tracer)
    try:
        service = build_service()
        service.submit(protocol).wait()
    finally:
        tracing.install(previous)
        tracer.close()
    spans = timeline.read_spans(path)
    print(f"\nwrote {len(spans)} spans to {path}")
    print(f"inspect with:  python -m repro.observability.timeline {path} "
          f"--job 0")

    # 3. the metrics side: Prometheus text exposition.
    print("\n--- telemetry (Prometheus text format, excerpt) ---")
    text = service.telemetry.to_prometheus(fleet=service.fleet)
    for line in text.splitlines():
        if "jobs_total" in line or "chip_health" in line:
            print(line)


if __name__ == "__main__":
    main()
