"""Serving protocol traffic: the fleet execution service end to end.

Simulates a production serving scenario on top of the paper's chip in
all three serving modes:

1. virtual clock -- the deterministic ``ExecutionService`` reference:
   bursts of mixed-priority jobs against an 8-chip fleet with a bounded
   admission queue, affinity dispatch and shed-lowest overload policy;
2. wall clock -- ``ConcurrentExecutionService`` runs the same traffic
   on real chip-worker threads with device-latency pacing, so jobs/sec
   and p50/p99 latency are measured in real seconds;
3. asyncio -- ``AsyncExecutionService`` streams per-job progress events
   to a coroutine while backpressure suspends submitters, not the loop.

Run with:  python examples/protocol_serving.py
"""

import asyncio

from repro import (
    AsyncExecutionService,
    Biochip,
    ConcurrentConfig,
    ConcurrentExecutionService,
    ExecutionService,
    JobState,
    ServiceConfig,
)
from repro.workloads import bursty_traffic, mixed_priority_traffic


def virtual_clock_demo(grid):
    service = ExecutionService.dry_run(
        ServiceConfig(
            n_chips=8,
            policy="affinity",
            max_queue_depth=24,
            admission="shed-lowest",
        ),
        grid=grid,
    )

    print("steady mixed-priority traffic:")
    handles = service.submit_many(mixed_priority_traffic(grid, 20, seed=1))
    service.drain()
    served = sum(h.result().state is JobState.DONE for h in handles)
    print(f"  {served}/{len(handles)} jobs served, "
          f"fleet time {service.now:.1f} s")

    print("\nbursty overload against the bounded queue:")
    for i, burst in enumerate(bursty_traffic(grid, 3, mean_burst_size=40,
                                             seed=2)):
        burst_handles = service.submit_many(
            (protocol, j % 3) for j, protocol in enumerate(burst)
        )
        refused = sum(h.state in (JobState.REJECTED, JobState.SHED)
                      for h in burst_handles)
        service.drain()
        print(f"  burst {i}: {len(burst_handles)} submitted, "
              f"{refused} refused at admission")

    print()
    print(service.report())


def wall_clock_demo(grid):
    # time_scale paces each attempt by a fraction of its accounted chip
    # seconds, emulating device latency: the workers overlap real waits.
    with ConcurrentExecutionService.dry_run(
            ConcurrentConfig(n_workers=8, time_scale=0.002),
            grid=grid) as service:
        service.submit_many(mixed_priority_traffic(grid, 20, seed=1))
        results = service.drain()
        served = sum(r.state is JobState.DONE for r in results)
        pool = service.snapshot()["pool"]
        print(f"  {served}/{len(results)} jobs served by "
              f"{pool['n_workers']} {pool['mode']} workers in "
              f"{pool['wall_time']:.2f} wall seconds "
              f"({pool['throughput']:.1f} jobs/s)")


async def asyncio_demo(grid):
    async with AsyncExecutionService.dry_run(
            ConcurrentConfig(n_workers=4, max_queue_depth=8,
                             time_scale=0.002),
            grid=grid) as service:
        protocols = mixed_priority_traffic(grid, 8, seed=3)
        # block=True backpressures: the coroutine suspends while the
        # admission queue is full, the event loop keeps running.
        handles = [await service.submit(p, priority=pr, block=True)
                   for p, pr in protocols]
        n_sense = 0
        async for event in handles[0].events():
            n_sense += event["kind"] == "sense"
        results = await asyncio.gather(*handles)
        served = sum(r.state is JobState.DONE for r in results)
        print(f"  {served}/{len(results)} jobs served; first job "
              f"streamed {n_sense} sense events mid-protocol")


def main():
    grid = Biochip.small_chip().grid

    print("=== virtual clock (deterministic reference) ===")
    virtual_clock_demo(grid)

    print("\n=== wall clock (threaded chip workers) ===")
    wall_clock_demo(grid)

    print("\n=== asyncio front end (streaming + backpressure) ===")
    asyncio.run(asyncio_demo(grid))


if __name__ == "__main__":
    main()
