"""Serving protocol traffic: the fleet execution service end to end.

Simulates a production serving scenario on top of the paper's chip:
bursts of mixed-priority protocol jobs arrive at an 8-chip fleet with a
bounded admission queue; hot protocols hit the per-chip compiled
program caches (affinity dispatch keeps them pinned), low-priority work
is shed under overload, and the telemetry report shows the
throughput/latency/hit-rate picture at the end.

Run with:  python examples/protocol_serving.py
"""

from repro import Biochip, ExecutionService, JobState, ServiceConfig
from repro.workloads import bursty_traffic, mixed_priority_traffic


def main():
    grid = Biochip.small_chip().grid
    service = ExecutionService.dry_run(
        ServiceConfig(
            n_chips=8,
            policy="affinity",
            max_queue_depth=24,
            admission="shed-lowest",
        ),
        grid=grid,
    )

    print("steady mixed-priority traffic:")
    handles = service.submit_many(mixed_priority_traffic(grid, 20, seed=1))
    service.drain()
    served = sum(h.result().state is JobState.DONE for h in handles)
    print(f"  {served}/{len(handles)} jobs served, "
          f"fleet time {service.now:.1f} s")

    print("\nbursty overload against the bounded queue:")
    for i, burst in enumerate(bursty_traffic(grid, 3, mean_burst_size=40,
                                             seed=2)):
        burst_handles = service.submit_many(
            (protocol, j % 3) for j, protocol in enumerate(burst)
        )
        refused = sum(h.state in (JobState.REJECTED, JobState.SHED)
                      for h in burst_handles)
        service.drain()
        print(f"  burst {i}: {len(burst_handles)} submitted, "
              f"{refused} refused at admission")

    print()
    print(service.report())


if __name__ == "__main__":
    main()
